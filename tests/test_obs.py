"""Tests for the unified telemetry layer (repro.obs).

Covers: the metrics registry under concurrent writers (counters and
histograms must not lose increments), trace-context propagation across
thread- and process-pool backends, registry adapters over the pre-existing
stats objects, result-cache accounting, and the no-op guarantee — telemetry
on versus off must produce byte-identical join answers.
"""

from __future__ import annotations

import json
import logging
import re
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.data.generators import uniform_relation
from repro.engine import ParallelJoinEngine
from repro.engine.backends import ThreadPoolBackend, execute_task
from repro.engine.routing import (
    build_worker_tasks,
    route_side,
    unit_offset_step,
)
from repro.geometry.band import BandCondition
from repro.local_join.base import canonical_pair_order
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanContext,
    format_trace_tree,
    log_buckets,
    percentile,
    resolve_level,
    span_record,
    tracer,
)
from repro.obs.tracing import Tracer
from repro.service import BandJoinService
from repro.config import ServiceConfig


@pytest.fixture(autouse=True)
def _isolated_obs_state():
    """Restore the global telemetry switch and drop traces around each test."""
    was_enabled = obs.is_enabled()
    obs.tracer().clear()
    yield
    (obs.enable if was_enabled else obs.disable)()
    obs.tracer().clear()


def _small_join(backend="serial", materialize=True, rows=800):
    s = uniform_relation("S", rows, 1, seed=3)
    t = uniform_relation("T", rows, 1, seed=4)
    condition = BandCondition.symmetric(["A1"], 0.01)
    engine = ParallelJoinEngine(backend=backend)
    return engine.join(s, t, condition, workers=4, materialize=materialize)


class TestPercentileAndBuckets:
    def test_percentile_matches_nearest_rank_semantics(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0
        assert percentile([], 99) == 0.0
        # rank = round(q/100 * (n-1)): q=95 over 5 values -> index 4
        assert percentile(values, 95) == 5.0

    def test_log_buckets_are_ascending_and_cover_range(self):
        buckets = log_buckets(1e-3, 10.0, per_decade=2)
        assert list(buckets) == sorted(buckets)
        assert buckets[0] <= 1e-3 and buckets[-1] >= 10.0

    def test_log_buckets_validate(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)


class TestRegistryConcurrency:
    def test_counter_exact_under_concurrent_writers(self):
        counter = Counter("c_total")
        threads, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                counter.inc(kind="x")

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert counter.value(kind="x") == threads * per_thread

    def test_histogram_exact_count_under_concurrent_writers(self):
        histogram = Histogram("h_seconds", buckets=log_buckets(1e-4, 10.0))
        threads, per_thread = 6, 1500

        def observe(seed):
            rng = np.random.default_rng(seed)
            for value in rng.uniform(1e-4, 5.0, per_thread):
                histogram.observe(float(value))

        workers = [threading.Thread(target=observe, args=(i,)) for i in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert histogram.count() == threads * per_thread
        assert histogram.sum() > 0
        median = histogram.quantile(50)
        assert 0.0 < median < 5.0

    def test_histogram_quantile_interpolates(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 50.0, 60.0):
            histogram.observe(value)
        assert histogram.quantile(25) <= 1.0
        assert 10.0 < histogram.quantile(90) <= 100.0

    def test_registry_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_gauge_callback_evaluated_at_scrape(self):
        registry = MetricsRegistry()
        state = {"n": 1}
        registry.gauge("g").set_function(lambda: state["n"])
        assert registry.get("g").value() == 1
        state["n"] = 7
        assert registry.get("g").value() == 7

    def test_prometheus_rendering_parses(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests").inc(3, op="query")
        registry.gauge("entries", "cached").set(5)
        registry.histogram("latency", "secs", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        samples = 0
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_and_labels
            samples += 1
        # counter(1) + gauge(1) + histogram (2 buckets + inf + sum + count)
        assert samples == 1 + 1 + 5
        assert 'op="query"' in text
        # JSON snapshot is serializable (no inf bucket bounds)
        json.dumps(registry.snapshot())


class TestTracing:
    def test_disabled_returns_noop_span(self):
        obs.disable()
        span = tracer().span("x")
        assert span.context is None
        with span:
            assert tracer().current_context() is None

    def test_same_thread_nesting_builds_tree(self):
        obs.enable()
        with tracer().span("root") as root:
            with tracer().span("child_a"):
                with tracer().span("grandchild"):
                    pass
            with tracer().span("child_b"):
                pass
        traces = tracer().recent(1)
        assert len(traces) == 1
        tree = traces[0]["root"]
        assert tree["name"] == "root"
        names = [child["name"] for child in tree["children"]]
        assert names == ["child_a", "child_b"]
        assert tree["children"][0]["children"][0]["name"] == "grandchild"
        assert root.context is not None

    def test_explicit_context_crosses_threads(self):
        obs.enable()
        with tracer().span("root") as root:
            ctx = root.context

            def worker():
                with tracer().span("task", parent=ctx):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        tree = tracer().recent(1)[0]["root"]
        assert [child["name"] for child in tree["children"]] == ["task"]

    def test_attach_grafts_records_from_foreign_process(self):
        obs.enable()
        with tracer().span("root") as root:
            record = span_record("task", parent=None, start=root.start, duration=0.01, pid=999)
            tracer().attach(root.context, [record])
        tree = tracer().recent(1)[0]["root"]
        assert tree["children"][0]["attrs"]["pid"] == 999

    def test_ring_buffer_bounded(self):
        private = Tracer(max_traces=3)
        # Spans need the global enabled switch on.
        obs.enable()
        for i in range(5):
            span = private.span(f"root{i}")
            span.end()
        assert len(private.recent()) == 3
        assert private.recent()[0]["root"]["name"] == "root4"

    def test_format_trace_tree_renders(self):
        obs.enable()
        with tracer().span("root", op="query"):
            with tracer().span("child"):
                pass
        text = format_trace_tree(tracer().recent(1)[0])
        assert "root" in text and "child" in text and "ms" in text


class TestBackendPropagation:
    def _tasks(self, rows=600):
        s = uniform_relation("S", rows, 1, seed=5)
        t = uniform_relation("T", rows, 1, seed=6)
        condition = BandCondition.symmetric(["A1"], 0.02)
        engine = ParallelJoinEngine(backend="serial")
        from repro.core.recpart import RecPartPartitioner

        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        s_matrix = s.join_matrix(condition.attributes)
        t_matrix = t.join_matrix(condition.attributes)
        s_routed = route_side(partitioning, s_matrix, "S")
        t_routed = route_side(partitioning, t_matrix, "T")
        step = unit_offset_step(s_matrix, t_matrix, condition)
        tasks = build_worker_tasks(partitioning, s_routed, t_routed, step)
        return tasks, s_matrix, t_matrix, condition, engine.algorithm

    def test_threadpool_ships_task_spans(self):
        obs.enable()
        tasks, s_matrix, t_matrix, condition, algorithm = self._tasks()
        backend = ThreadPoolBackend(max_workers=2)
        with tracer().span("root") as root:
            outcomes = backend.run(
                tasks, s_matrix, t_matrix, condition, algorithm, True,
                trace_ctx=root.context,
            )
            for outcome in outcomes:
                if outcome.spans:
                    tracer().attach(root.context, outcome.spans)
        tree = tracer().recent(1)[0]["root"]
        task_spans = [c for c in tree["children"] if c["name"] == "task"]
        busy = [task for task in tasks if task.s_rows.size and task.t_rows.size]
        assert len(task_spans) == len(busy)
        for span in task_spans:
            assert span["attrs"]["output"] >= 0
            assert span["duration"] >= 0

    def test_processes_backend_ships_task_spans_across_pids(self):
        import os

        obs.enable()
        s = uniform_relation("S", 500, 1, seed=7)
        t = uniform_relation("T", 500, 1, seed=8)
        condition = BandCondition.symmetric(["A1"], 0.02)
        engine = ParallelJoinEngine(backend="processes", max_parallelism=2)
        with tracer().span("root"):
            engine.join(s, t, condition, workers=2, materialize=True)
        tree = tracer().recent(1)[0]["root"]

        def collect(node, name, found):
            if node["name"] == name:
                found.append(node)
            for child in node.get("children", ()):
                collect(child, name, found)

        task_spans: list = []
        collect(tree, "task", task_spans)
        assert task_spans, "process workers shipped no task spans"
        assert all(span["attrs"]["pid"] != os.getpid() for span in task_spans)

    def test_execute_task_without_context_ships_no_spans(self):
        obs.enable()
        tasks, s_matrix, t_matrix, condition, algorithm = self._tasks()
        outcome = execute_task(tasks[0], s_matrix, t_matrix, condition, algorithm, True)
        assert outcome.spans is None

    def test_trace_ctx_is_picklable(self):
        import pickle

        ctx = SpanContext("trace", "span")
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestNoopEquivalence:
    def test_join_answers_identical_with_telemetry_on_and_off(self):
        obs.disable()
        off = _small_join()
        obs.enable()
        on = _small_join()
        obs.disable()
        assert off.total_output == on.total_output
        np.testing.assert_array_equal(
            canonical_pair_order(off.pairs), canonical_pair_order(on.pairs)
        )

    def test_service_query_identical_with_telemetry_on_and_off(self):
        rng = np.random.default_rng(11)
        s_values = rng.uniform(0, 1, 1200)
        t_values = rng.uniform(0, 1, 1200)
        answers = {}
        for telemetry in (False, True):
            config = ServiceConfig(compaction="sync", telemetry=telemetry)
            if not telemetry:
                obs.disable()
            with BandJoinService(config=config) as service:
                service.register("S", {"A1": s_values})
                service.register("T", {"A1": t_values})
                service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
                result = service.query("q")
                answers[telemetry] = canonical_pair_order(result.pairs)
            obs.disable()
        np.testing.assert_array_equal(answers[False], answers[True])


class TestServiceSurface:
    def test_query_produces_trace_with_expected_stages(self):
        with BandJoinService(config=ServiceConfig(compaction="sync")) as service:
            rng = np.random.default_rng(13)
            service.register("S", {"A1": rng.uniform(0, 1, 1500)})
            service.register("T", {"A1": rng.uniform(0, 1, 1500)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            traces = service.traces(1)
        assert traces
        root = traces[0]["root"]
        assert root["name"] == "query"
        names = {child["name"] for child in root["children"]}
        assert {"queue", "execute"} <= names
        execute = next(c for c in root["children"] if c["name"] == "execute")
        stages = {child["name"] for child in execute["children"]}
        assert {"plan", "route", "local_join", "merge"} <= stages

    def test_span_durations_sum_close_to_root(self):
        with BandJoinService(config=ServiceConfig(compaction="sync")) as service:
            rng = np.random.default_rng(17)
            service.register("S", {"A1": rng.uniform(0, 1, 4000)})
            service.register("T", {"A1": rng.uniform(0, 1, 4000)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            traces = service.traces(1)
        root = traces[0]["root"]
        child_sum = sum(child["duration"] for child in root["children"])
        assert child_sum <= root["duration"] * 1.10
        assert child_sum >= root["duration"] * 0.5

    def test_prometheus_exposition_includes_all_scopes(self):
        with BandJoinService(config=ServiceConfig(compaction="sync")) as service:
            rng = np.random.default_rng(19)
            service.register("S", {"A1": rng.uniform(0, 1, 800)})
            service.register("T", {"A1": rng.uniform(0, 1, 800)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            text = service.prometheus()
        assert "repro_scheduler_events_total" in text
        assert "repro_plan_cache_entries" in text
        assert "repro_result_cache_hits" in text
        assert "repro_kernel_invocations_total" in text

    def test_scheduler_metrics_snapshot_shape_preserved(self):
        with BandJoinService(config=ServiceConfig(compaction="sync")) as service:
            rng = np.random.default_rng(23)
            service.register("S", {"A1": rng.uniform(0, 1, 500)})
            service.register("T", {"A1": rng.uniform(0, 1, 500)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            service.query("q")
            snapshot = service.scheduler.metrics.snapshot()
        assert snapshot["submitted"] == 2
        assert snapshot["completed"] == 2
        assert snapshot["failed"] == 0
        assert snapshot["latency"]["samples"] == 2
        assert sum(snapshot["paths"].values()) == 2

    def test_stats_reports_telemetry_flag(self):
        with BandJoinService(config=ServiceConfig(compaction="sync")) as service:
            assert service.stats()["telemetry"] is True
        obs.disable()
        with BandJoinService(
            config=ServiceConfig(compaction="sync", telemetry=False)
        ) as service:
            assert service.stats()["telemetry"] is False


class TestResultCacheAccounting:
    def _service(self, **overrides):
        return BandJoinService(config=ServiceConfig(compaction="sync", **overrides))

    def test_hits_misses_and_stores(self):
        with self._service() as service:
            rng = np.random.default_rng(29)
            service.register("S", {"A1": rng.uniform(0, 1, 600)})
            service.register("T", {"A1": rng.uniform(0, 1, 600)})
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")  # cold: full-key miss + base miss, 2 stores
            stats = prepared.result_cache_stats
            assert stats.misses == 2
            assert stats.stores == 2
            assert stats.hits == 0
            service.query("q")  # full-key hit
            assert stats.hits == 1

    def test_invalidate_counts_dropped_entries(self):
        with self._service() as service:
            rng = np.random.default_rng(31)
            service.register("S", {"A1": rng.uniform(0, 1, 600)})
            service.register("T", {"A1": rng.uniform(0, 1, 600)})
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            prepared.invalidate()
            assert prepared.result_cache_stats.invalidations == 2
            assert prepared.cached_results() == 0

    def test_evictions_counted_when_capacity_exceeded(self):
        with self._service(result_cache_size=1) as service:
            rng = np.random.default_rng(37)
            service.register("S", {"A1": rng.uniform(0, 1, 600)})
            service.register("T", {"A1": rng.uniform(0, 1, 600)})
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q", epsilons=[0.01])
            service.query("q", epsilons=[0.02])
            service.query("q", epsilons=[0.03])
            assert prepared.result_cache_stats.evictions >= 2
        # description surfaces the accounting
        info = prepared.describe()
        assert "result_cache" in info and info["result_cache"]["stores"] >= 3


class TestLogging:
    def test_resolve_level_mapping(self):
        assert resolve_level(verbosity=1) == logging.INFO
        assert resolve_level(verbosity=2) == logging.DEBUG
        assert resolve_level("warning") == logging.WARNING
        with pytest.raises(ValueError):
            resolve_level("not-a-level")

    def test_setup_logging_idempotent(self):
        logger = obs.setup_logging(level="INFO")
        handlers_before = list(logger.handlers)
        logger = obs.setup_logging(level="DEBUG")
        assert list(logger.handlers) == handlers_before
        assert logger.level == logging.DEBUG
        obs.setup_logging(level="WARNING")


class TestPrometheusExpositionLint:
    """Lint-style validation of the full text exposition of a live service."""

    _NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    _SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$")
    _LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')

    @staticmethod
    def _exposition():
        rng = np.random.default_rng(41)
        config = ServiceConfig(compaction="sync", staleness_threshold=10.0)
        with BandJoinService(config=config) as service:
            service.register("S", {"A1": rng.uniform(0, 1, 600)})
            service.register("T", {"A1": rng.uniform(0, 1, 600)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            service.query("q")
            service.query("q")
            return service.prometheus()

    def test_exposition_parses_and_names_are_valid(self):
        text = self._exposition()
        declared_types: dict[str, str] = {}
        samples: list[tuple[str, dict, float]] = []
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                name = line.split(" ", 3)[2]
                assert self._NAME.match(name), f"invalid HELP name: {line!r}"
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert self._NAME.match(name), f"invalid TYPE name: {line!r}"
                assert kind in ("counter", "gauge", "histogram"), line
                assert name not in declared_types, f"duplicate TYPE for {name}"
                declared_types[name] = kind
                continue
            assert not line.startswith("#"), f"unknown comment line: {line!r}"
            match = self._SAMPLE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, raw_labels, raw_value = match.groups()
            labels = {}
            if raw_labels:
                for part in raw_labels.split(","):
                    assert self._LABEL.match(part), f"bad label {part!r} in {line!r}"
                    key, value = part.split("=", 1)
                    labels[key] = value.strip('"')
            value = float(raw_value)  # must parse (+Inf included)
            samples.append((name, labels, value))
        assert samples, "exposition was empty"
        # Every sample belongs to a declared metric family.
        for name, _, _ in samples:
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name.removesuffix(suffix) in declared_types:
                    base = name.removesuffix(suffix)
                    break
            assert base in declared_types, f"sample {name} has no TYPE declaration"
        # The families this PR promises are present.
        assert declared_types.get("repro_scheduler_events_total") == "counter"
        assert declared_types.get("repro_scheduler_latency_seconds") == "histogram"

    def test_histogram_series_are_consistent(self):
        text = self._exposition()
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        sums: dict[tuple, float] = {}
        counts: dict[tuple, float] = {}
        for line in text.splitlines():
            match = self._SAMPLE.match(line) if line and not line.startswith("#") else None
            if not match:
                continue
            name, raw_labels, raw_value = match.groups()
            labels = dict(
                part.split("=", 1) for part in (raw_labels or "").split(",") if part
            )
            le = labels.pop("le", None)
            series = (name, tuple(sorted(labels.items())))
            if name.endswith("_bucket"):
                key = (name.removesuffix("_bucket"), series[1])
                buckets.setdefault(key, []).append((float(le.strip('"')), float(raw_value)))
            elif name.endswith("_sum"):
                sums[(name.removesuffix("_sum"), series[1])] = float(raw_value)
            elif name.endswith("_count"):
                counts[(name.removesuffix("_count"), series[1])] = float(raw_value)
        histogram_keys = [k for k in buckets if k[0].startswith("repro_")]
        assert histogram_keys, "no histogram series found"
        for key in histogram_keys:
            series = buckets[key]
            # Buckets arrive in ascending le order and are cumulative.
            les = [le for le, _ in series]
            assert les == sorted(les)
            assert les[-1] == float("inf")
            values = [v for _, v in series]
            assert values == sorted(values), f"non-cumulative buckets for {key}"
            # _sum and _count exist; +Inf bucket equals _count.
            assert key in sums, f"missing _sum for {key}"
            assert key in counts, f"missing _count for {key}"
            assert values[-1] == counts[key]


class TestTraceRingConfiguration:
    @pytest.fixture(autouse=True)
    def _restore_global_ring(self):
        tracer_ = obs.tracer()
        original = tracer_.max_traces
        yield
        tracer_.resize(original)

    def test_resize_shrinks_keeping_newest(self):
        local = Tracer()
        obs.enable()
        for i in range(6):
            with local.span("op", i=i):
                pass
        local.resize(2)
        assert local.max_traces == 2
        kept = local.recent()
        assert len(kept) == 2
        assert [trace["root"]["attrs"]["i"] for trace in kept] == [5, 4]
        local.resize(8)  # growing keeps contents
        assert local.max_traces == 8
        assert len(local.recent()) == 2
        with pytest.raises(ValueError):
            local.resize(0)

    def test_service_config_resizes_global_ring(self):
        config = ServiceConfig(trace_ring_size=7, compaction="sync")
        with BandJoinService(config=config):
            assert obs.tracer().max_traces == 7

    def test_trace_ring_env_parsing(self, monkeypatch):
        from repro.obs.globals import _initial_trace_ring
        from repro.obs.tracing import DEFAULT_TRACE_BUFFER

        monkeypatch.delenv("REPRO_TRACE_RING", raising=False)
        assert _initial_trace_ring() == DEFAULT_TRACE_BUFFER
        monkeypatch.setenv("REPRO_TRACE_RING", "17")
        assert _initial_trace_ring() == 17
        monkeypatch.setenv("REPRO_TRACE_RING", "garbage")
        assert _initial_trace_ring() == DEFAULT_TRACE_BUFFER
        monkeypatch.setenv("REPRO_TRACE_RING", "0")
        assert _initial_trace_ring() == DEFAULT_TRACE_BUFFER

    def test_config_validates_ring_sizes(self):
        with pytest.raises(Exception):
            ServiceConfig(trace_ring_size=0)
        with pytest.raises(Exception):
            ServiceConfig(capture_ring_size=0)
