"""Tests for the local band-join algorithms.

The nested-loop join is used as the reference; every other algorithm must
produce exactly the same pair set on every input, including the asymmetric
and equi-join special cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import pareto_relation, uniform_relation
from repro.geometry.band import BandCondition
from repro.local_join import default_local_join
from repro.local_join.base import canonical_pair_order, join_pair_count
from repro.local_join.iejoin_local import IEJoinLocal
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin

ALGORITHMS = [
    NestedLoopJoin(block_size=64),
    IndexNestedLoopJoin(max_candidates_per_chunk=1000),
    SortSweepJoin(),
    IEJoinLocal(),
]


def _pairs(algorithm, s, t, condition):
    return canonical_pair_order(algorithm.join(s, t, condition))


def _random_inputs(rng, n_s, n_t, d, spread=10.0):
    return rng.uniform(0, spread, size=(n_s, d)), rng.uniform(0, spread, size=(n_t, d))


class TestAgreementWithReference:
    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_same_pairs_as_nested_loop(self, algorithm, d, rng):
        s, t = _random_inputs(rng, 150, 170, d, spread=5.0)
        condition = BandCondition.symmetric([f"A{i+1}" for i in range(d)], 0.4)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        result = _pairs(algorithm, s, t, condition)
        np.testing.assert_array_equal(result, reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_count_matches_join(self, algorithm, rng):
        s, t = _random_inputs(rng, 120, 140, 2, spread=4.0)
        condition = BandCondition.symmetric(["A1", "A2"], 0.3)
        assert algorithm.count(s, t, condition) == algorithm.join(s, t, condition).shape[0]

    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_asymmetric_band(self, algorithm, rng):
        s, t = _random_inputs(rng, 100, 100, 1, spread=3.0)
        condition = BandCondition({"A1": (0.0, 0.5)})  # 0 <= t - s <= 0.5
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_equi_join_case(self, algorithm, rng):
        values = rng.integers(0, 20, size=80).astype(float)
        s = values[:, None]
        t = rng.integers(0, 20, size=90).astype(float)[:, None]
        condition = BandCondition.symmetric(["A1"], 0.0)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_empty_inputs(self, algorithm):
        condition = BandCondition.symmetric(["A1"], 1.0)
        empty = np.empty((0, 1))
        some = np.array([[1.0], [2.0]])
        assert algorithm.join(empty, some, condition).shape == (0, 2)
        assert algorithm.join(some, empty, condition).shape == (0, 2)
        assert algorithm.count(empty, empty, condition) == 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_skewed_pareto_input(self, algorithm):
        s_rel = pareto_relation("S", 300, dimensions=2, z=1.0, seed=0)
        t_rel = pareto_relation("T", 300, dimensions=2, z=1.0, seed=1)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        s = s_rel.join_matrix(condition.attributes)
        t = t_rel.join_matrix(condition.attributes)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    def test_cartesian_product_limit(self, rng):
        """A band width larger than the data spread degenerates to the Cartesian product."""
        s, t = _random_inputs(rng, 40, 30, 2, spread=1.0)
        condition = BandCondition.symmetric(["A1", "A2"], 10.0)
        for algorithm in ALGORITHMS:
            assert algorithm.count(s, t, condition) == 40 * 30


class TestIndexNestedLoopSpecifics:
    def test_selects_most_selective_dimension(self, rng):
        # Dimension 1 has a huge spread relative to its band width, so it
        # should be chosen as the index dimension.
        s = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 1000, 200)])
        t = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 1000, 200)])
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        algorithm = IndexNestedLoopJoin()
        assert algorithm.select_index_dimension(s, t, condition) == 1

    def test_explicit_index_dimension(self, rng):
        s, t = _random_inputs(rng, 50, 50, 2)
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        algorithm = IndexNestedLoopJoin(index_dimension=1)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    def test_invalid_index_dimension(self, rng):
        s, t = _random_inputs(rng, 10, 10, 2)
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        with pytest.raises(ValueError):
            IndexNestedLoopJoin(index_dimension=5).join(s, t, condition)

    def test_chunking_does_not_change_result(self, rng):
        s, t = _random_inputs(rng, 300, 300, 1, spread=3.0)
        condition = BandCondition.symmetric(["A1"], 0.2)
        small_chunks = IndexNestedLoopJoin(max_candidates_per_chunk=17)
        large_chunks = IndexNestedLoopJoin(max_candidates_per_chunk=10**6)
        np.testing.assert_array_equal(
            _pairs(small_chunks, s, t, condition), _pairs(large_chunks, s, t, condition)
        )

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            IndexNestedLoopJoin(max_candidates_per_chunk=0)
        with pytest.raises(ValueError):
            NestedLoopJoin(block_size=0)
        with pytest.raises(ValueError):
            SortSweepJoin(sweep_dimension=-1)
        with pytest.raises(ValueError):
            IEJoinLocal(primary_dimension=-1)

    def test_sweep_dimension_out_of_range(self, rng):
        s, t = _random_inputs(rng, 10, 10, 1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        with pytest.raises(ValueError):
            SortSweepJoin(sweep_dimension=3).join(s, t, condition)
        with pytest.raises(ValueError):
            IEJoinLocal(primary_dimension=3).join(s, t, condition)


class TestHelpers:
    def test_default_local_join_is_index_nested_loop(self):
        assert isinstance(default_local_join(), IndexNestedLoopJoin)

    def test_join_pair_count_wrapper(self, rng):
        s, t = _random_inputs(rng, 60, 60, 1, spread=2.0)
        condition = BandCondition.symmetric(["A1"], 0.3)
        expected = NestedLoopJoin().count(s, t, condition)
        assert join_pair_count(s, t, condition) == expected
        assert join_pair_count(s, t, condition, algorithm=SortSweepJoin()) == expected

    def test_canonical_pair_order_sorts(self):
        pairs = np.array([[2, 1], [0, 5], [2, 0]])
        ordered = canonical_pair_order(pairs)
        assert ordered.tolist() == [[0, 5], [2, 0], [2, 1]]

    def test_relation_sized_uniform_join_count_sanity(self):
        """Expected number of pairs for uniform data matches the analytic value."""
        s = uniform_relation("S", 2000, dimensions=1, seed=0)
        t = uniform_relation("T", 2000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.01)
        count = join_pair_count(
            s.join_matrix(["A1"]), t.join_matrix(["A1"]), condition
        )
        expected = 2000 * 2000 * 0.02  # P(|x-y| <= 0.01) ~ 2 * eps for uniform [0, 1)
        assert 0.7 * expected < count < 1.3 * expected
