"""Tests for the local band-join algorithms.

The nested-loop join is used as the reference; every other algorithm must
produce exactly the same pair set on every input, including the asymmetric
and equi-join special cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import pareto_relation, uniform_relation
from repro.geometry.band import BandCondition
from repro.local_join import (
    LOCAL_ALGORITHMS,
    default_local_join,
    get_local_algorithm,
)
from repro.local_join import kernels
from repro.local_join.auto import AutoJoin
from repro.local_join.base import canonical_pair_order, join_pair_count
from repro.local_join.iejoin_local import IEJoinLocal
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin

ALGORITHMS = [
    NestedLoopJoin(block_size=64),
    IndexNestedLoopJoin(max_candidates_per_chunk=1000),
    SortSweepJoin(),
    IEJoinLocal(),
    AutoJoin(),
]


def _pairs(algorithm, s, t, condition):
    return canonical_pair_order(algorithm.join(s, t, condition))


def _random_inputs(rng, n_s, n_t, d, spread=10.0):
    return rng.uniform(0, spread, size=(n_s, d)), rng.uniform(0, spread, size=(n_t, d))


class TestAgreementWithReference:
    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_same_pairs_as_nested_loop(self, algorithm, d, rng):
        s, t = _random_inputs(rng, 150, 170, d, spread=5.0)
        condition = BandCondition.symmetric([f"A{i+1}" for i in range(d)], 0.4)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        result = _pairs(algorithm, s, t, condition)
        np.testing.assert_array_equal(result, reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_count_matches_join(self, algorithm, rng):
        s, t = _random_inputs(rng, 120, 140, 2, spread=4.0)
        condition = BandCondition.symmetric(["A1", "A2"], 0.3)
        assert algorithm.count(s, t, condition) == algorithm.join(s, t, condition).shape[0]

    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_asymmetric_band(self, algorithm, rng):
        s, t = _random_inputs(rng, 100, 100, 1, spread=3.0)
        condition = BandCondition({"A1": (0.0, 0.5)})  # 0 <= t - s <= 0.5
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:], ids=lambda a: a.name)
    def test_equi_join_case(self, algorithm, rng):
        values = rng.integers(0, 20, size=80).astype(float)
        s = values[:, None]
        t = rng.integers(0, 20, size=90).astype(float)[:, None]
        condition = BandCondition.symmetric(["A1"], 0.0)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_empty_inputs(self, algorithm):
        condition = BandCondition.symmetric(["A1"], 1.0)
        empty = np.empty((0, 1))
        some = np.array([[1.0], [2.0]])
        assert algorithm.join(empty, some, condition).shape == (0, 2)
        assert algorithm.join(some, empty, condition).shape == (0, 2)
        assert algorithm.count(empty, empty, condition) == 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_skewed_pareto_input(self, algorithm):
        s_rel = pareto_relation("S", 300, dimensions=2, z=1.0, seed=0)
        t_rel = pareto_relation("T", 300, dimensions=2, z=1.0, seed=1)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        s = s_rel.join_matrix(condition.attributes)
        t = t_rel.join_matrix(condition.attributes)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    def test_cartesian_product_limit(self, rng):
        """A band width larger than the data spread degenerates to the Cartesian product."""
        s, t = _random_inputs(rng, 40, 30, 2, spread=1.0)
        condition = BandCondition.symmetric(["A1", "A2"], 10.0)
        for algorithm in ALGORITHMS:
            assert algorithm.count(s, t, condition) == 40 * 30


class TestIndexNestedLoopSpecifics:
    def test_selects_most_selective_dimension(self, rng):
        # Dimension 1 has a huge spread relative to its band width, so it
        # should be chosen as the index dimension.
        s = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 1000, 200)])
        t = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 1000, 200)])
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        algorithm = IndexNestedLoopJoin()
        assert algorithm.select_index_dimension(s, t, condition) == 1

    def test_explicit_index_dimension(self, rng):
        s, t = _random_inputs(rng, 50, 50, 2)
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        algorithm = IndexNestedLoopJoin(index_dimension=1)
        reference = _pairs(NestedLoopJoin(), s, t, condition)
        np.testing.assert_array_equal(_pairs(algorithm, s, t, condition), reference)

    def test_invalid_index_dimension(self, rng):
        s, t = _random_inputs(rng, 10, 10, 2)
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        with pytest.raises(ValueError):
            IndexNestedLoopJoin(index_dimension=5).join(s, t, condition)

    def test_chunking_does_not_change_result(self, rng):
        s, t = _random_inputs(rng, 300, 300, 1, spread=3.0)
        condition = BandCondition.symmetric(["A1"], 0.2)
        small_chunks = IndexNestedLoopJoin(max_candidates_per_chunk=17)
        large_chunks = IndexNestedLoopJoin(max_candidates_per_chunk=10**6)
        np.testing.assert_array_equal(
            _pairs(small_chunks, s, t, condition), _pairs(large_chunks, s, t, condition)
        )

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            IndexNestedLoopJoin(max_candidates_per_chunk=0)
        with pytest.raises(ValueError):
            NestedLoopJoin(block_size=0)
        with pytest.raises(ValueError):
            SortSweepJoin(sweep_dimension=-1)
        with pytest.raises(ValueError):
            IEJoinLocal(primary_dimension=-1)

    def test_sweep_dimension_out_of_range(self, rng):
        s, t = _random_inputs(rng, 10, 10, 1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        with pytest.raises(ValueError):
            SortSweepJoin(sweep_dimension=3).join(s, t, condition)
        with pytest.raises(ValueError):
            IEJoinLocal(primary_dimension=3).join(s, t, condition)


class TestHelpers:
    def test_default_local_join_is_index_nested_loop(self):
        assert isinstance(default_local_join(), IndexNestedLoopJoin)

    def test_join_pair_count_wrapper(self, rng):
        s, t = _random_inputs(rng, 60, 60, 1, spread=2.0)
        condition = BandCondition.symmetric(["A1"], 0.3)
        expected = NestedLoopJoin().count(s, t, condition)
        assert join_pair_count(s, t, condition) == expected
        assert join_pair_count(s, t, condition, algorithm=SortSweepJoin()) == expected

    def test_canonical_pair_order_sorts(self):
        pairs = np.array([[2, 1], [0, 5], [2, 0]])
        ordered = canonical_pair_order(pairs)
        assert ordered.tolist() == [[0, 5], [2, 0], [2, 1]]

    def test_eps_arrays_are_cached_and_read_only(self):
        condition = BandCondition({"A1": (0.2, 0.7), "A2": 0.5})
        left, right = condition.eps_arrays()
        assert condition.eps_arrays() is condition.eps_arrays()
        np.testing.assert_array_equal(left, [0.2, 0.5])
        np.testing.assert_array_equal(right, [0.7, 0.5])
        with pytest.raises(ValueError):
            left[0] = 99.0

    def test_relation_sized_uniform_join_count_sanity(self):
        """Expected number of pairs for uniform data matches the analytic value."""
        s = uniform_relation("S", 2000, dimensions=1, seed=0)
        t = uniform_relation("T", 2000, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.01)
        count = join_pair_count(
            s.join_matrix(["A1"]), t.join_matrix(["A1"]), condition
        )
        expected = 2000 * 2000 * 0.02  # P(|x-y| <= 0.01) ~ 2 * eps for uniform [0, 1)
        assert 0.7 * expected < count < 1.3 * expected


class TestRandomizedKernelEquivalence:
    """Randomized pair-set equivalence of every kernel against the reference.

    Each trial draws a fresh shape (dimensionality, sizes including empty and
    single-row relations), value distribution (continuous or quantized so
    duplicates are common) and an asymmetric epsilon per dimension; all
    kernels must return exactly the reference pair set and count.
    """

    @pytest.mark.parametrize("trial", range(12))
    def test_pair_set_equivalence(self, trial):
        rng = np.random.default_rng(1000 + trial)
        d = int(rng.integers(1, 4))
        n_s = int(rng.choice([0, 1, 2, 37, 120]))
        n_t = int(rng.choice([0, 1, 2, 41, 140]))
        spread = float(rng.uniform(2.0, 12.0))
        if rng.random() < 0.5:  # quantized values: duplicates and boundary ties
            s = rng.integers(0, 12, size=(n_s, d)).astype(float)
            t = rng.integers(0, 12, size=(n_t, d)).astype(float)
        else:
            s = rng.uniform(0, spread, size=(n_s, d))
            t = rng.uniform(0, spread, size=(n_t, d))
        widths = {
            f"A{i+1}": (float(rng.uniform(0, 1.2)), float(rng.uniform(0, 1.2)))
            for i in range(d)
        }
        condition = BandCondition(widths)
        reference = canonical_pair_order(NestedLoopJoin().join(s, t, condition))
        kernels_under_test = [
            IndexNestedLoopJoin(),
            SortSweepJoin(),
            IEJoinLocal(),
            AutoJoin(),
            SortSweepJoin(memory_budget=64),   # ~2 candidates per chunk
            IEJoinLocal(memory_budget=64),
            IndexNestedLoopJoin(memory_budget=64),
        ]
        for algorithm in kernels_under_test:
            result = canonical_pair_order(algorithm.join(s, t, condition))
            np.testing.assert_array_equal(result, reference, err_msg=algorithm.name)
            assert algorithm.count(s, t, condition) == reference.shape[0], algorithm.name

    def test_single_row_relations(self):
        condition = BandCondition({"A1": (0.5, 0.25)})
        s = np.array([[1.0]])
        t_in = np.array([[1.2]])   # t - s = 0.2 <= 0.25: joins
        t_out = np.array([[1.3]])  # t - s = 0.3 > 0.25: does not
        for algorithm in ALGORITHMS:
            assert algorithm.count(s, t_in, condition) == 1, algorithm.name
            assert algorithm.count(s, t_out, condition) == 0, algorithm.name

    def test_all_duplicate_values(self):
        condition = BandCondition.symmetric(["A1", "A2"], 0.0)
        s = np.ones((25, 2))
        t = np.ones((30, 2))
        for algorithm in ALGORITHMS:
            assert algorithm.count(s, t, condition) == 25 * 30, algorithm.name


class TestZeroMaterializationCounts:
    """count() must never expand candidate pairs on the 1-D path."""

    @pytest.mark.parametrize(
        "algorithm",
        [SortSweepJoin(), IEJoinLocal(), IndexNestedLoopJoin()],
        ids=lambda a: a.name,
    )
    def test_1d_count_never_expands_candidates(self, algorithm, rng, monkeypatch):
        s, t = rng.uniform(0, 4, size=(300, 1)), rng.uniform(0, 4, size=(300, 1))
        condition = BandCondition.symmetric(["A1"], 0.3)
        expected = NestedLoopJoin().count(s, t, condition)

        def _forbidden(*args, **kwargs):
            raise AssertionError("1-D count must not expand candidate pairs")

        monkeypatch.setattr(kernels, "iter_window_candidates", _forbidden)
        assert algorithm.count(s, t, condition) == expected

    def test_multi_d_count_is_chunk_bounded(self, rng):
        """Multi-dimensional counting also stays exact under a tiny budget."""
        s, t = rng.uniform(0, 3, size=(200, 2)), rng.uniform(0, 3, size=(200, 2))
        condition = BandCondition.symmetric(["A1", "A2"], 0.25)
        expected = NestedLoopJoin().count(s, t, condition)
        assert SortSweepJoin(memory_budget=64).count(s, t, condition) == expected
        assert IEJoinLocal(memory_budget=64).count(s, t, condition) == expected


class TestKernelPrimitives:
    def test_chunk_spans_respect_budget(self):
        counts = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        spans = list(kernels.chunk_spans(counts, 7))
        assert spans[0][0] == 0 and spans[-1][1] == counts.shape[0]
        for (start, stop), (next_start, _) in zip(spans, spans[1:]):
            assert stop == next_start
        for start, stop in spans:
            if stop - start > 1:  # single oversized rows are allowed through
                assert int(counts[start:stop].sum()) <= 7

    def test_oversized_window_is_sliced(self):
        lows = np.array([0], dtype=np.int64)
        counts = np.array([10], dtype=np.int64)
        chunks = list(kernels.iter_window_candidates(lows, counts, 4))
        assert [c[1].size for c in chunks] == [4, 4, 2]
        flat = np.concatenate([c[1] for c in chunks])
        np.testing.assert_array_equal(flat, np.arange(10))

    def test_max_candidates_validation(self):
        with pytest.raises(ValueError):
            kernels.max_candidates(0)
        assert kernels.max_candidates(kernels.CANDIDATE_BYTES * 5) == 5


class TestAutoJoinSelection:
    def test_tiny_inputs_use_nested_loop(self, rng):
        s, t = rng.uniform(0, 1, size=(20, 2)), rng.uniform(0, 1, size=(20, 2))
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        auto = AutoJoin()
        assert auto.select(s, t, condition).name == "nested-loop"

    def test_dense_band_uses_nested_loop(self, rng):
        s, t = rng.uniform(0, 1, size=(400, 1)), rng.uniform(0, 1, size=(400, 1))
        wide = BandCondition.symmetric(["A1"], 10.0)  # everything joins
        assert AutoJoin().select(s, t, wide).name == "nested-loop"

    def test_selective_band_uses_interval_kernel_on_best_dimension(self, rng):
        # Dimension 2 has a far larger spread-to-width ratio.
        s = np.column_stack([rng.uniform(0, 1, 500), rng.uniform(0, 1000, 500)])
        t = np.column_stack([rng.uniform(0, 1, 500), rng.uniform(0, 1000, 500)])
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        chosen = AutoJoin().select(s, t, condition)
        assert chosen.name == "sort-sweep"
        assert chosen.sweep_dimension == 1

    def test_last_choice_records_dispatch(self, rng):
        s, t = rng.uniform(0, 5, size=(300, 1)), rng.uniform(0, 5, size=(300, 1))
        condition = BandCondition.symmetric(["A1"], 0.05)
        auto = AutoJoin()
        auto.count(s, t, condition)
        assert auto.last_choice == "sort-sweep"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoJoin(memory_budget=0)
        with pytest.raises(ValueError):
            AutoJoin(dense_fraction=0.0)


class TestRegistryAndBudgets:
    def test_registry_resolves_every_name(self):
        for name in LOCAL_ALGORITHMS:
            assert get_local_algorithm(name).name == name

    def test_config_names_match_registry(self):
        """config.LOCAL_ALGORITHM_NAMES is a dependency-free copy of the
        registry keys; this pins the two in sync."""
        from repro.config import LOCAL_ALGORITHM_NAMES

        assert set(LOCAL_ALGORITHM_NAMES) == set(LOCAL_ALGORITHMS)

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            get_local_algorithm("quantum-join")

    def test_registry_default_and_passthrough(self):
        assert isinstance(get_local_algorithm(None), IndexNestedLoopJoin)
        instance = SortSweepJoin()
        assert get_local_algorithm(instance) is instance

    def test_with_memory_budget_copies_budgeted_kernels(self):
        original = SortSweepJoin()
        bound = original.with_memory_budget(4096)
        assert bound is not original
        assert bound.memory_budget == 4096
        assert original.memory_budget == kernels.DEFAULT_MEMORY_BUDGET
        # Unchanged or absent budgets pass the instance through.
        assert bound.with_memory_budget(4096) is bound
        assert bound.with_memory_budget(None) is bound
        plain = NestedLoopJoin()
        assert plain.with_memory_budget(4096) is plain
