"""Tests for the online band-join serving layer (repro.service).

The load-bearing property is delta-append correctness: serving a query
after appends through the delta path (cached base result + appended rows
routed through the existing partitioning) must produce exactly the pair
set of a from-scratch join over the full data — for every partitioner and
engine backend.  On top of that: catalog versioning and staleness
maintenance, result-cache invalidation on append, scheduler single-flight /
micro-batching / admission control, and the service facade + line protocol.
"""

from __future__ import annotations

import io
import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.grid import GridEpsilonPartitioner
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.config import ServiceConfig
from repro.core.recpart import RecPartPartitioner
from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.engine import ParallelJoinEngine
from repro.exceptions import ServiceError, ServiceOverloadError
from repro.geometry.band import BandCondition
from repro.local_join.base import canonical_pair_order
from repro.service import (
    PATH_COLD,
    PATH_DELTA,
    PATH_MICRO_BATCH,
    PATH_PLAN_CACHE,
    PATH_RESULT_CACHE,
    BandJoinService,
    PreparedQuery,
    QueryScheduler,
    RelationCatalog,
    epsilon_union,
    serve_lines,
)


def _columns(rng: np.random.Generator, n: int, low: float = 0.0, high: float = 1.0):
    return {"A1": rng.uniform(low, high, n)}


def _reference_pairs(s: Relation, t: Relation, eps: float) -> np.ndarray:
    condition = BandCondition.symmetric(["A1"], eps)
    result = ParallelJoinEngine(backend="serial").join(
        s, t, condition, workers=4, materialize=True
    )
    return canonical_pair_order(result.pairs)


def sync_service(**overrides) -> BandJoinService:
    defaults = dict(compaction="sync", scheduler_workers=2)
    defaults.update(overrides)
    return BandJoinService(ServiceConfig(**defaults))


class TestRelationCatalog:
    def test_register_and_get(self):
        catalog = RelationCatalog()
        snapshot = catalog.register("S", {"A1": np.arange(5.0)})
        assert snapshot.version == 1 and snapshot.base_version == 1
        assert snapshot.rows == 5 and snapshot.delta_rows == 0
        assert catalog.get("S") is snapshot
        assert "S" in catalog and "T" not in catalog

    def test_duplicate_register_needs_replace(self):
        catalog = RelationCatalog()
        catalog.register("S", {"A1": np.arange(3.0)})
        with pytest.raises(ServiceError):
            catalog.register("S", {"A1": np.arange(3.0)})
        replaced = catalog.register("S", {"A1": np.arange(4.0)}, replace=True)
        assert replaced.version == 2 and replaced.base_version == 2

    def test_unknown_lookup_and_drop(self):
        catalog = RelationCatalog()
        with pytest.raises(ServiceError):
            catalog.get("missing")
        with pytest.raises(ServiceError):
            catalog.append("missing", {"A1": np.arange(2.0)})
        with pytest.raises(ServiceError):
            catalog.drop("missing")
        catalog.register("S", {"A1": np.arange(2.0)})
        catalog.drop("S")
        assert "S" not in catalog

    def test_append_accumulates_delta_and_bumps_version(self):
        catalog = RelationCatalog(staleness_threshold=10.0)
        catalog.register("S", {"A1": np.arange(4.0)})
        first = catalog.append("S", {"A1": np.array([10.0, 11.0])})
        second = catalog.append("S", {"A1": np.array([12.0])})
        assert (first.version, second.version) == (2, 3)
        assert second.base_version == 1
        assert second.delta_rows == 3
        np.testing.assert_array_equal(
            second.full["A1"], [0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0]
        )

    def test_append_schema_checked(self):
        catalog = RelationCatalog()
        catalog.register("S", {"A1": np.arange(3.0), "A2": np.arange(3.0)})
        with pytest.raises(ServiceError):
            catalog.append("S", {"A1": np.arange(2.0)})

    def test_empty_append_is_a_noop(self):
        catalog = RelationCatalog()
        snapshot = catalog.register("S", {"A1": np.arange(3.0)})
        assert catalog.append("S", {"A1": np.empty(0)}) is snapshot

    def test_staleness_threshold_fires_callback(self):
        stale: list[str] = []
        catalog = RelationCatalog(staleness_threshold=0.5, on_stale=stale.append)
        catalog.register("S", {"A1": np.arange(10.0)})
        catalog.append("S", {"A1": np.arange(4.0)})
        assert stale == []
        catalog.append("S", {"A1": np.arange(2.0)})
        assert stale == ["S"]
        assert catalog.stale_names() == ["S"]

    def test_compact_merges_delta_and_keeps_content_version(self):
        catalog = RelationCatalog(staleness_threshold=10.0)
        catalog.register("S", {"A1": np.arange(4.0)})
        appended = catalog.append("S", {"A1": np.array([9.0])})
        compacted = catalog.compact("S")
        assert compacted.version == appended.version  # same rows, same version
        assert compacted.base_version == appended.base_version + 1
        assert compacted.delta is None and len(compacted.base) == 5
        # Compacting an already-clean relation is a no-op.
        assert catalog.compact("S") is compacted


class TestPreparedQueryPaths:
    def test_cold_then_result_cache(self):
        rng = np.random.default_rng(3)
        with sync_service() as service:
            service.register("S", _columns(rng, 800))
            service.register("T", _columns(rng, 800))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            first = service.query("q")
            second = service.query("q")
            assert first.path == PATH_COLD
            assert second.path == PATH_RESULT_CACHE
            np.testing.assert_array_equal(
                canonical_pair_order(first.pairs), canonical_pair_order(second.pairs)
            )

    def test_new_epsilon_misses_result_cache_but_not_new_plan_for_same_eps(self):
        rng = np.random.default_rng(4)
        with sync_service() as service:
            service.register("S", _columns(rng, 600))
            service.register("T", _columns(rng, 600))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            assert service.query("q").path == PATH_COLD
            assert service.query("q", 0.01).path == PATH_COLD
            assert service.query("q", 0.01).path == PATH_RESULT_CACHE

    def test_append_invalidates_result_cache_via_versions(self):
        rng = np.random.default_rng(5)
        with sync_service(staleness_threshold=10.0) as service:
            service.register("S", _columns(rng, 700))
            service.register("T", _columns(rng, 700))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            service.query("q")
            service.append("T", _columns(rng, 30))
            after_append = service.query("q")
            assert after_append.path == PATH_DELTA
            assert service.query("q").path == PATH_RESULT_CACHE

    def test_delta_path_matches_full_reference_with_out_of_bounds_values(self):
        rng = np.random.default_rng(6)
        with sync_service(staleness_threshold=10.0) as service:
            service.register("S", _columns(rng, 900))
            service.register("T", _columns(rng, 900))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.03)
            service.query("q")
            # Deltas on both sides, partly far outside the original bounds.
            service.append("S", _columns(rng, 60, low=-1.0, high=2.5))
            service.append("T", _columns(rng, 45, low=1.5, high=3.0))
            result = service.query("q")
            assert result.path == PATH_DELTA
            s_full = service.catalog.get("S").full
            t_full = service.catalog.get("T").full
            np.testing.assert_array_equal(
                canonical_pair_order(result.pairs),
                _reference_pairs(s_full, t_full, 0.03),
            )
            assert result.job is not None
            assert result.job.total_output == result.n_pairs

    def test_self_join_delta(self):
        rng = np.random.default_rng(7)
        with sync_service(staleness_threshold=10.0) as service:
            service.register("R", _columns(rng, 500))
            service.prepare("q", "R", "R", attributes=["A1"], epsilons=0.01)
            service.query("q")
            service.append("R", _columns(rng, 40))
            result = service.query("q")
            assert result.path == PATH_DELTA
            full = service.catalog.get("R").full
            np.testing.assert_array_equal(
                canonical_pair_order(result.pairs), _reference_pairs(full, full, 0.01)
            )

    def test_compaction_re_partitions_and_preserves_answers(self):
        rng = np.random.default_rng(8)
        with sync_service(staleness_threshold=0.05) as service:
            service.register("S", _columns(rng, 600))
            service.register("T", _columns(rng, 600))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            before = service.query("q")
            service.append("S", _columns(rng, 120))  # past the threshold
            snapshot = service.catalog.get("S")
            assert snapshot.delta is None  # sync compaction already ran
            assert snapshot.base_version == 2
            after = service.query("q")
            # Plan was re-built by the compaction hook, so the full join runs
            # under a cached plan rather than paying optimization again.
            assert after.path == PATH_PLAN_CACHE
            s_full = service.catalog.get("S").full
            t_full = service.catalog.get("T").full
            np.testing.assert_array_equal(
                canonical_pair_order(after.pairs), _reference_pairs(s_full, t_full, 0.02)
            )
            assert after.n_pairs >= before.n_pairs

    def test_background_compaction_drains(self):
        rng = np.random.default_rng(9)
        with BandJoinService(
            ServiceConfig(compaction="background", staleness_threshold=0.05)
        ) as service:
            service.register("S", _columns(rng, 400))
            service.register("T", _columns(rng, 400))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            service.query("q")
            service.append("S", _columns(rng, 100))
            service.drain_maintenance()
            assert service.catalog.get("S").delta is None

    def test_epsilon_binding_forms(self):
        rng = np.random.default_rng(10)
        with sync_service() as service:
            service.register("S", _columns(rng, 200))
            service.register("T", _columns(rng, 200))
            prepared = service.prepare("q", "S", "T", attributes=["A1"])
            assert prepared.epsilon_key(0.5) == ((0.5, 0.5),)
            assert prepared.epsilon_key([0.5]) == ((0.5, 0.5),)
            assert prepared.epsilon_key({"A1": (0.1, 0.2)}) == ((0.1, 0.2),)
            with pytest.raises(ServiceError):
                prepared.epsilon_key(None)  # no defaults configured
            with pytest.raises(ServiceError):
                prepared.epsilon_key([0.1, 0.2])  # wrong arity
            with pytest.raises(ServiceError):
                prepared.epsilon_key({"A2": 0.1})  # wrong attribute

    def test_prepare_validates_attributes_and_names(self):
        rng = np.random.default_rng(11)
        with sync_service() as service:
            service.register("S", _columns(rng, 100))
            service.register("T", _columns(rng, 100))
            with pytest.raises(ServiceError):
                service.prepare("q", "S", "T", attributes=["missing"])
            with pytest.raises(ServiceError):
                service.prepare("q", "S", "nope", attributes=["A1"])
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.1)
            with pytest.raises(ServiceError):
                service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.1)
            with pytest.raises(ServiceError):
                service.query("unknown")


PARTITIONERS = {
    "RecPart": lambda: RecPartPartitioner(),
    "Grid-eps": lambda: GridEpsilonPartitioner(),
    "1-Bucket": lambda: OneBucketPartitioner(),
}


class TestDeltaAppendEquivalence:
    """(register A; append B; query) == (register A∪B; query), exactly."""

    @pytest.mark.parametrize("partitioner_name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_across_partitioners_and_backends(self, partitioner_name, backend):
        rng = np.random.default_rng(12)
        base_s = _columns(rng, 500)
        base_t = _columns(rng, 450)
        delta_s = _columns(rng, 80, low=-0.5, high=1.8)
        delta_t = _columns(rng, 50, low=0.4, high=2.2)
        eps = 0.05

        with sync_service(backend=backend, staleness_threshold=10.0) as incremental:
            incremental.register("S", {k: v.copy() for k, v in base_s.items()})
            incremental.register("T", {k: v.copy() for k, v in base_t.items()})
            incremental.prepare(
                "q",
                "S",
                "T",
                attributes=["A1"],
                epsilons=eps,
                partitioner=PARTITIONERS[partitioner_name](),
            )
            incremental.query("q")  # materialize + cache the base result
            incremental.append("S", delta_s)
            incremental.append("T", delta_t)
            result = incremental.query("q")
            assert result.path == PATH_DELTA

        with sync_service(backend=backend, staleness_threshold=10.0) as scratch:
            scratch.register(
                "S", {"A1": np.concatenate([base_s["A1"], delta_s["A1"]])}
            )
            scratch.register(
                "T", {"A1": np.concatenate([base_t["A1"], delta_t["A1"]])}
            )
            scratch.prepare(
                "q",
                "S",
                "T",
                attributes=["A1"],
                epsilons=eps,
                partitioner=PARTITIONERS[partitioner_name](),
            )
            expected = scratch.query("q")

        np.testing.assert_array_equal(
            canonical_pair_order(result.pairs), canonical_pair_order(expected.pairs)
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        base_rows=st.integers(50, 400),
        delta_rows=st.integers(1, 120),
        eps=st.floats(0.001, 0.2),
    )
    def test_property_random_workloads(self, seed, base_rows, delta_rows, eps):
        rng = np.random.default_rng(seed)
        base = rng.uniform(0, 1, base_rows)
        delta = rng.uniform(-0.5, 1.5, delta_rows)
        t_values = rng.uniform(0, 1, base_rows)

        catalog = RelationCatalog(staleness_threshold=10.0)
        engine = ParallelJoinEngine(backend="serial")
        catalog.register("S", {"A1": base})
        catalog.register("T", {"A1": t_values})
        prepared = PreparedQuery(
            catalog, engine, "S", "T", attributes=["A1"], default_epsilons=eps
        )
        prepared.execute()
        catalog.append("S", {"A1": delta})
        incremental = prepared.execute()
        assert incremental.path == PATH_DELTA

        s_full = Relation("S", {"A1": np.concatenate([base, delta])})
        t_full = Relation("T", {"A1": t_values})
        np.testing.assert_array_equal(
            canonical_pair_order(incremental.pairs),
            _reference_pairs(s_full, t_full, eps),
        )


class _StubPrepared:
    """Minimal PreparedQuery stand-in for scheduler unit tests."""

    def __init__(self, name="stub", block: threading.Event | None = None):
        self.key = (name,)
        self.block = block
        self.calls = 0
        self.attributes = ("A1",)
        self.versions = (1, 1)
        self.started = threading.Event()

    def epsilon_key(self, epsilons=None):
        value = 0.1 if epsilons is None else float(epsilons)
        return ((value, value),)

    def current_versions(self):
        return self.versions

    def execute(self, epsilons=None, snapshots=None):
        from repro.service.prepared import QueryResult

        self.calls += 1
        self.started.set()
        if self.block is not None:
            self.block.wait(timeout=30)
        return QueryResult(
            pairs=np.empty((0, 2), dtype=np.int64),
            path=PATH_COLD,
            s_name="S",
            t_name="T",
            s_version=1,
            t_version=1,
            seconds=0.0,
        )

    def snapshots(self):
        return (None, None)

    def condition(self, epsilons=None):  # pragma: no cover - no pairs to filter
        raise AssertionError("empty wide results never reach the filter")

    def store_result(self, ekey, result):
        pass


class TestQueryScheduler:
    def test_single_flight_shares_one_execution(self):
        gate = threading.Event()
        stub = _StubPrepared(block=gate)
        with QueryScheduler(max_workers=2, max_pending=8) as scheduler:
            futures = [scheduler.submit(stub, 0.5) for _ in range(5)]
            assert len({id(f) for f in futures}) == 1
            gate.set()
            futures[0].result(timeout=30)
            assert stub.calls == 1
            assert scheduler.metrics.deduplicated == 4

    def test_admission_control_rejects_when_saturated(self):
        gate = threading.Event()
        stub = _StubPrepared(block=gate)
        scheduler = QueryScheduler(max_workers=1, max_pending=2)
        try:
            first = scheduler.submit(stub, 0.1)
            second = scheduler.submit(stub, 0.2)
            with pytest.raises(ServiceOverloadError):
                scheduler.submit(stub, 0.3)
            assert scheduler.metrics.rejected == 1
            gate.set()
            first.result(timeout=30)
            second.result(timeout=30)
        finally:
            gate.set()
            scheduler.close()

    def test_version_change_bypasses_single_flight(self):
        """A query after an acknowledged append must not attach to an
        in-flight execution over the pre-append data."""
        gate = threading.Event()
        stub = _StubPrepared(block=gate)
        with QueryScheduler(max_workers=1, max_pending=8) as scheduler:
            stale = scheduler.submit(stub, 0.5)
            assert stub.started.wait(timeout=30)  # pinned to the v1 snapshots
            stub.versions = (2, 1)  # an append was acknowledged meanwhile
            fresh = scheduler.submit(stub, 0.5)
            assert fresh is not stale
            gate.set()
            stale.result(timeout=30)
            fresh.result(timeout=30)
            assert stub.calls == 2
            assert scheduler.metrics.deduplicated == 0

    def test_background_compactions_do_not_stack(self):
        rng = np.random.default_rng(19)
        with BandJoinService(
            ServiceConfig(compaction="background", staleness_threshold=0.05)
        ) as service:
            service.register("S", _columns(rng, 400))
            service.register("T", _columns(rng, 400))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            service.query("q")
            for _ in range(6):  # burst of stale appends
                service.append("S", _columns(rng, 60))
            service.drain_maintenance()
            assert service.catalog.get("S").delta is None
            assert service.catalog.get("S").rows == 400 + 6 * 60

    def test_submit_after_close_raises(self):
        scheduler = QueryScheduler(max_workers=1)
        scheduler.close()
        with pytest.raises(ServiceError):
            scheduler.submit(_StubPrepared(), 0.1)

    def test_micro_batch_filters_are_exact(self):
        rng = np.random.default_rng(13)
        with sync_service(scheduler_workers=1, max_batch=8) as service:
            service.register("S", _columns(rng, 800))
            service.register("T", _columns(rng, 800))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            gate_future = service.submit("q", 0.015)  # occupies the single worker
            burst = [service.submit("q", e) for e in (0.02, 0.01, 0.005)]
            results = [f.result(timeout=60) for f in [gate_future, *burst]]
            paths = {r.path for r in results}
            assert PATH_MICRO_BATCH in paths or service.scheduler.metrics.batched == 0
            for eps, result in zip((0.02, 0.01, 0.005), results[1:]):
                direct = service.prepared("q").execute(eps)
                np.testing.assert_array_equal(
                    canonical_pair_order(result.pairs),
                    canonical_pair_order(direct.pairs),
                )

    def test_epsilon_union(self):
        assert epsilon_union([((0.1, 0.2),), ((0.3, 0.05),)]) == ((0.3, 0.2),)
        with pytest.raises(ServiceError):
            epsilon_union([])

    def test_concurrent_mixed_queries_are_consistent(self):
        rng = np.random.default_rng(14)
        with sync_service(scheduler_workers=4, max_batch=4) as service:
            service.register("S", _columns(rng, 600))
            service.register("T", _columns(rng, 600))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            epsilons = [0.005, 0.01, 0.02, 0.005, 0.01, 0.02] * 4
            futures = [service.submit("q", e) for e in epsilons]
            counts = {}
            for eps, future in zip(epsilons, futures):
                counts.setdefault(eps, set()).add(future.result(timeout=60).n_pairs)
            # Every execution of the same epsilon returns the same pair count.
            assert all(len(values) == 1 for values in counts.values())
            snapshot = service.scheduler.metrics.snapshot()
            assert snapshot["completed"] == snapshot["submitted"]
            assert snapshot["latency"]["samples"] == snapshot["completed"]


class TestServiceFacadeAndServer:
    def test_stats_shape(self):
        rng = np.random.default_rng(15)
        with sync_service() as service:
            service.register("S", _columns(rng, 300))
            service.register("T", _columns(rng, 300))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            service.query("q")
            service.query("q")
            stats = service.stats()
            assert stats["catalog"]["S"]["rows"] == 300
            assert stats["prepared"]["q"]["stats"]["executions"] == 2
            assert stats["prepared"]["q"]["stats"]["result_cached"] == 1
            assert stats["scheduler"]["completed"] == 2
            assert stats["plan_cache"]["entries"] >= 1

    def test_closed_service_rejects_work(self):
        service = sync_service()
        service.close()
        with pytest.raises(ServiceError):
            service.register("S", {"A1": np.arange(2.0)})

    def test_line_protocol_round_trip(self):
        rng = np.random.default_rng(16)
        requests = [
            {"op": "ping"},
            {"op": "register", "name": "S", "columns": {"A1": rng.random(300).tolist()}},
            {"op": "register", "name": "T", "columns": {"A1": rng.random(300).tolist()}},
            {
                "op": "prepare",
                "query": "q",
                "s": "S",
                "t": "T",
                "attributes": ["A1"],
                "epsilons": [0.02],
            },
            {"op": "query", "query": "q", "sample": 2},
            {"op": "query", "query": "q"},
            {"op": "append", "name": "S", "columns": {"A1": rng.random(10).tolist()}},
            {"op": "query", "query": "q", "epsilons": [[0.01, 0.03]]},
            {"op": "catalog"},
            {"op": "stats"},
            {"op": "nope"},
            {"op": "quit"},
            {"op": "ping"},  # never reached: quit ends the session
        ]
        out = io.StringIO()
        with sync_service(staleness_threshold=10.0) as service:
            answered = serve_lines(
                service, [json.dumps(r) for r in requests], out
            )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert answered == len(responses) == len(requests) - 1
        assert responses[0] == {"ok": True, "op": "pong"}
        assert responses[4]["ok"] and responses[4]["path"] == "cold"
        assert len(responses[4]["sample"]) <= 2
        assert responses[5]["path"] == "result_cache"
        assert responses[7]["ok"]  # asymmetric epsilons over the delta path
        assert responses[8]["catalog"]["S"]["delta_rows"] == 10
        assert not responses[10]["ok"] and "nope" in responses[10]["error"]
        assert responses[11] == {"ok": True, "op": "quit"}

    def test_malformed_lines_keep_the_session_alive(self):
        out = io.StringIO()
        with sync_service() as service:
            serve_lines(service, ["garbage", "[1, 2]", "", '{"op": "ping"}'], out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [False, False, True]

    def test_tcp_transport(self):
        import socket

        from repro.service import LineProtocolServer

        rng = np.random.default_rng(17)
        with sync_service() as service:
            server = LineProtocolServer(("127.0.0.1", 0), service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                with socket.create_connection(server.server_address[:2], timeout=10) as conn:
                    stream = conn.makefile("rw", encoding="utf-8")
                    for request in (
                        {"op": "register", "name": "S", "columns": {"A1": rng.random(100).tolist()}},
                        {"op": "register", "name": "T", "columns": {"A1": rng.random(100).tolist()}},
                        {"op": "prepare", "query": "q", "s": "S", "t": "T",
                         "attributes": ["A1"], "epsilons": [0.05]},
                        {"op": "query", "query": "q"},
                    ):
                        stream.write(json.dumps(request) + "\n")
                        stream.flush()
                        response = json.loads(stream.readline())
                        assert response["ok"], response
                    assert response["pairs"] > 0
            finally:
                server.shutdown()
                server.server_close()

    def test_cli_serve_stdio(self, monkeypatch, capsys):
        from repro import cli

        rng = np.random.default_rng(18)
        requests = [
            {"op": "register", "name": "S", "columns": {"A1": rng.random(120).tolist()}},
            {"op": "register", "name": "T", "columns": {"A1": rng.random(120).tolist()}},
            {"op": "prepare", "query": "q", "s": "S", "t": "T",
             "attributes": ["A1"], "epsilons": [0.05]},
            {"op": "query", "query": "q"},
            {"op": "quit"},
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        )
        assert cli.main(["serve", "--backend", "serial"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        ready = json.loads(lines[0])
        assert ready["op"] == "ready" and ready["transport"] == "stdio"
        replies = [json.loads(line) for line in lines[1:]]
        assert all(r["ok"] for r in replies)
        assert replies[3]["pairs"] > 0


class TestOutputAdmissionControl:
    """max_estimated_pairs prices queries before they reach a worker."""

    def test_oversized_estimate_is_rejected_narrow_passes(self):
        rng = np.random.default_rng(3)
        with sync_service(max_estimated_pairs=1000, workers=2) as service:
            service.register("S", _columns(rng, 400))
            service.register("T", _columns(rng, 400))
            service.prepare("q", "S", "T", attributes=["A1"])
            # A band covering everything estimates ~160k pairs: rejected.
            with pytest.raises(ServiceOverloadError):
                service.query("q", epsilons=10.0)
            assert service.scheduler.metrics.rejected == 1
            # A narrow band estimates well under the limit: served.
            result = service.query("q", epsilons=0.0005)
            assert result.n_pairs == _reference_pairs(
                service.catalog.get("S").full, service.catalog.get("T").full, 0.0005
            ).shape[0]

    def test_cached_result_prices_exactly(self):
        """After a result is cached, admission uses its exact cardinality."""
        rng = np.random.default_rng(7)
        with sync_service(workers=2) as service:
            service.register("S", _columns(rng, 300))
            service.register("T", _columns(rng, 300))
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            exact = service.query("q").n_pairs
            assert prepared.estimate_pairs() == float(exact)

    def test_estimate_pairs_sanity(self):
        """The sampled estimate lands within a small factor of the truth."""
        rng = np.random.default_rng(11)
        with sync_service(workers=2) as service:
            service.register("S", _columns(rng, 2000))
            service.register("T", _columns(rng, 2000))
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            estimate = prepared.estimate_pairs()
            exact = prepared.count()
            assert 0.3 * exact <= estimate <= 3.0 * exact

    def test_count_matches_materialized_query(self):
        rng = np.random.default_rng(13)
        with sync_service(workers=2) as service:
            service.register("S", _columns(rng, 500))
            service.register("T", _columns(rng, 500))
            prepared = service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.02)
            assert prepared.count() == service.query("q").n_pairs
