"""Tests for the RecPart optimizer (repro.core.recpart)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights, RecPartConfig
from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner
from repro.core.split_tree import SplitTreePartitioning
from repro.cost.lower_bounds import compute_lower_bounds
from repro.data.generators import correlated_pair, uniform_relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition


@pytest.fixture(scope="module")
def pareto_3d():
    return correlated_pair(4000, 4000, dimensions=3, z=1.5, seed=17)


@pytest.fixture(scope="module")
def condition_3d_wide():
    return BandCondition.symmetric(["A1", "A2", "A3"], 0.1)


class TestRecPartBasics:
    def test_produces_split_tree_partitioning(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        partitioning = RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=4)
        assert isinstance(partitioning, SplitTreePartitioning)
        assert partitioning.workers == 4
        assert partitioning.n_units >= 1
        assert partitioning.method == "RecPart-S"
        assert partitioning.stats.optimization_seconds > 0
        assert partitioning.stats.iterations >= 1

    def test_symmetric_variant_name(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        partitioning = RecPartPartitioner().partition(s, t, condition_3d_wide, workers=4)
        assert partitioning.method == "RecPart"

    def test_number_of_leaves_is_small_multiple_of_workers(self, pareto_3d, condition_3d_wide):
        """Paper Section 4.3: iterations (and leaves) stay within a small multiple of w."""
        s, t = pareto_3d
        workers = 4
        partitioning = RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=workers)
        assert partitioning.n_leaves <= 32 * workers

    def test_routing_covers_all_input(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        partitioning = RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=4)
        attrs = condition_3d_wide.attributes
        partitioning.check_coverage(s.join_matrix(attrs), "S")
        partitioning.check_coverage(t.join_matrix(attrs), "T")

    def test_invalid_worker_count(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        with pytest.raises(PartitioningError):
            RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=0)

    def test_single_worker_is_trivial(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        partitioning = RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=1)
        result = DistributedBandJoinExecutor().execute(s, t, condition_3d_wide, partitioning)
        # One worker receives everything exactly once: no duplication possible.
        assert result.total_input == len(s) + len(t)

    def test_deterministic_given_rng(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        first = RecPartSPartitioner().partition(
            s, t, condition_3d_wide, workers=4, rng=np.random.default_rng(3)
        )
        second = RecPartSPartitioner().partition(
            s, t, condition_3d_wide, workers=4, rng=np.random.default_rng(3)
        )
        assert first.n_units == second.n_units
        matrix = s.join_matrix(condition_3d_wide.attributes)
        np.testing.assert_array_equal(
            first.route(matrix, "S")[1], second.route(matrix, "S")[1]
        )


class TestRecPartQuality:
    def test_beats_trivial_partitioning_on_skewed_data(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        workers = 4
        weights = LoadWeights()
        bounds = compute_lower_bounds(s, t, condition_3d_wide, workers, weights=weights)
        partitioning = RecPartSPartitioner(weights=weights).partition(
            s, t, condition_3d_wide, workers=workers
        )
        result = DistributedBandJoinExecutor(weights=weights).execute(
            s, t, condition_3d_wide, partitioning, verify="count"
        )
        # Far better than "everything on one worker" (overhead w - 1 = 3).
        assert bounds.load_overhead(result.max_worker_load) < 1.0
        # Input duplication stays moderate.
        assert bounds.input_overhead(result.total_input) < 0.5

    def test_low_duplication_on_equi_join(self, rng):
        """With band width 0 nothing ever needs to be duplicated across splits."""
        s, t = correlated_pair(3000, 3000, dimensions=1, z=1.5, seed=3)
        condition = BandCondition.symmetric(["A1"], 0.0)
        partitioning = RecPartSPartitioner().partition(s, t, condition, workers=4)
        result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        assert result.total_input == len(s) + len(t)

    def test_correct_output_on_uniform_data(self):
        s = uniform_relation("S", 1500, dimensions=2, seed=5)
        t = uniform_relation("T", 1500, dimensions=2, seed=6)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    def test_correct_output_on_skewed_data(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        partitioning = RecPartSPartitioner().partition(s, t, condition_3d_wide, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition_3d_wide, partitioning, verify="count")

    def test_symmetric_splits_help_on_reverse_pareto(self):
        """Paper Tables 9/14: on anti-correlated data RecPart (symmetric) achieves a
        much lower max worker load than RecPart-S."""
        s, t = correlated_pair(4000, 4000, dimensions=1, z=1.5, reverse=True, seed=9)
        condition = BandCondition.symmetric(["A1"], 2.0)
        weights = LoadWeights()
        executor = DistributedBandJoinExecutor(weights=weights)
        asymmetric = executor.execute(
            s, t, condition, RecPartSPartitioner(weights=weights).partition(s, t, condition, 4)
        )
        symmetric = executor.execute(
            s, t, condition, RecPartPartitioner(weights=weights).partition(s, t, condition, 4)
        )
        assert symmetric.max_worker_load <= asymmetric.max_worker_load * 1.05


class TestRecPartConfiguration:
    def test_theoretical_termination(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        config = RecPartConfig(termination="theoretical")
        partitioning = RecPartSPartitioner(config=config).partition(
            s, t, condition_3d_wide, workers=4
        )
        assert partitioning.stats.extra["termination"] == "theoretical"
        assert partitioning.n_units >= 1

    def test_iteration_cap_respected(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        config = RecPartConfig(max_iterations=3)
        partitioning = RecPartSPartitioner(config=config).partition(
            s, t, condition_3d_wide, workers=4
        )
        assert partitioning.stats.iterations <= 3

    def test_recpart_s_forces_asymmetric_config(self):
        partitioner = RecPartSPartitioner(config=RecPartConfig(symmetric=True))
        assert partitioner.config.symmetric is False

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecPartConfig(sample_size=1)
        with pytest.raises(ValueError):
            RecPartConfig(termination="bogus")
        with pytest.raises(ValueError):
            RecPartConfig(improvement_threshold=0.0)
        with pytest.raises(ValueError):
            RecPartConfig(small_partition_factor=0.0)

    def test_small_sample_still_works(self, pareto_3d, condition_3d_wide):
        s, t = pareto_3d
        config = RecPartConfig(sample_size=64)
        partitioning = RecPartSPartitioner(config=config).partition(
            s, t, condition_3d_wide, workers=4
        )
        DistributedBandJoinExecutor().execute(
            s, t, condition_3d_wide, partitioning, verify="count"
        )

    def test_grid_mode_used_when_band_width_huge(self):
        """When the whole space is smaller than twice the band width, the root is a
        small partition and RecPart falls back to internal 1-Bucket refinement."""
        s = uniform_relation("S", 2000, dimensions=1, low=0.0, high=1.0, seed=1)
        t = uniform_relation("T", 2000, dimensions=1, low=0.0, high=1.0, seed=2)
        condition = BandCondition.symmetric(["A1"], 10.0)
        partitioning = RecPartSPartitioner().partition(s, t, condition, workers=4)
        info = partitioning.describe()
        assert info["small_leaves_in_grid_mode"] >= 1
        assert partitioning.n_units > partitioning.n_leaves
