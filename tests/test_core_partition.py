"""Tests for the optimization context and leaf statistics (repro.core.partition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.core.partition import LeafStats, OptimizationContext
from repro.data.generators import correlated_pair
from repro.exceptions import OptimizationError
from repro.geometry.band import BandCondition
from repro.geometry.region import Region
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


@pytest.fixture
def context(rng) -> OptimizationContext:
    s, t = correlated_pair(3000, 3000, dimensions=2, z=1.5, seed=5)
    condition = BandCondition.symmetric(["A1", "A2"], 0.1)
    input_sample = draw_input_sample(s, t, condition, 1000, rng)
    output_sample = draw_output_sample(s, t, condition, 500, rng)
    return OptimizationContext(
        condition=condition,
        workers=4,
        weights=LoadWeights(),
        input_sample=input_sample,
        output_sample=output_sample,
    )


def _root_leaf(ctx: OptimizationContext) -> LeafStats:
    return LeafStats(
        node_id=0,
        region=ctx.root_region(),
        s_rows=np.arange(ctx.input_sample.s_values.shape[0]),
        t_rows=np.arange(ctx.input_sample.t_values.shape[0]),
        out_rows=np.arange(len(ctx.output_sample)),
    )


class TestOptimizationContext:
    def test_basic_properties(self, context):
        assert context.dimensionality == 2
        assert context.workers == 4
        assert np.allclose(context.epsilons, 0.1)
        assert context.variance_factor == pytest.approx(3 / 16)

    def test_single_worker_variance_factor(self, context, rng):
        single = OptimizationContext(
            condition=context.condition,
            workers=1,
            weights=context.weights,
            input_sample=context.input_sample,
            output_sample=context.output_sample,
        )
        assert single.variance_factor == 1.0

    def test_invalid_workers(self, context):
        with pytest.raises(OptimizationError):
            OptimizationContext(
                condition=context.condition,
                workers=0,
                weights=context.weights,
                input_sample=context.input_sample,
                output_sample=context.output_sample,
            )

    def test_scale_for(self, context):
        assert context.scale_for("S") == context.s_scale
        assert context.scale_for("T") == context.t_scale

    def test_root_region_covers_samples(self, context):
        region = context.root_region()
        assert region.contains(context.input_sample.s_values).all()
        assert region.contains(context.input_sample.t_values).all()


class TestLeafStats:
    def test_root_estimates_match_relation_sizes(self, context):
        leaf = _root_leaf(context)
        assert leaf.estimated_s(context) == pytest.approx(context.input_sample.s_total)
        assert leaf.estimated_t(context) == pytest.approx(context.input_sample.t_total)
        assert leaf.estimated_input(context) == pytest.approx(context.input_sample.total_input)
        assert leaf.estimated_output(context) == pytest.approx(
            context.output_sample.estimated_output, rel=1e-9
        )

    def test_load_uses_weights(self, context):
        leaf = _root_leaf(context)
        expected = context.weights.load(
            leaf.estimated_input(context), leaf.estimated_output(context)
        )
        assert leaf.load(context) == pytest.approx(expected)

    def test_grid_mode_changes_units_and_input(self, context):
        leaf = _root_leaf(context)
        base_input = leaf.estimated_input(context)
        leaf.grid_rows, leaf.grid_cols = 2, 3
        assert leaf.n_units() == 6
        # S replicated to 3 columns, T replicated to 2 rows.
        expected = 3 * leaf.estimated_s(context) + 2 * leaf.estimated_t(context)
        assert leaf.estimated_input(context) == pytest.approx(expected)
        assert leaf.estimated_input(context) > base_input

    def test_grid_unit_load_splits_evenly(self, context):
        leaf = _root_leaf(context)
        total_load_before = leaf.load(context)
        leaf.grid_rows, leaf.grid_cols = 2, 2
        unit = leaf.unit_load(context)
        # Each of the 4 cells holds half of S, half of T and a quarter of the output.
        assert unit < total_load_before
        assert leaf.sum_squared_unit_loads(context) == pytest.approx(4 * unit * unit)

    def test_smallness_depends_on_region(self, context):
        big = _root_leaf(context)
        assert not big.is_small(context)
        small_leaf = LeafStats(
            node_id=1,
            region=Region.from_bounds([0.0, 0.0], [0.15, 0.12]),
            s_rows=np.arange(3),
            t_rows=np.arange(3),
            out_rows=np.arange(0),
        )
        assert small_leaf.is_small(context)
        assert small_leaf.splittable_dimensions(context) == []

    def test_splittable_dimensions_partial(self, context):
        leaf = LeafStats(
            node_id=2,
            region=Region.from_bounds([0.0, 0.0], [0.15, 50.0]),
            s_rows=np.arange(3),
            t_rows=np.arange(3),
            out_rows=np.arange(0),
        )
        assert leaf.splittable_dimensions(context) == [1]

    def test_sample_values_and_output_owner_values(self, context):
        leaf = _root_leaf(context)
        assert leaf.sample_values(context, "S", 0).shape[0] == leaf.s_rows.size
        assert leaf.sample_values(context, "T", 1).shape[0] == leaf.t_rows.size
        assert leaf.output_owner_values(context, "S", 0).shape[0] == leaf.out_rows.size

    def test_bump_version(self, context):
        leaf = _root_leaf(context)
        before = leaf.version
        leaf.bump_version()
        assert leaf.version == before + 1
