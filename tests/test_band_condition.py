"""Tests for band conditions (repro.geometry.band)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BandConditionError
from repro.geometry.band import BandCondition, BandPredicate


class TestBandPredicate:
    def test_symmetric_predicate(self):
        pred = BandPredicate("A1", 2.0, 2.0)
        assert pred.is_symmetric
        assert not pred.is_equality
        assert pred.width == 4.0

    def test_equality_predicate(self):
        pred = BandPredicate("A1", 0.0, 0.0)
        assert pred.is_equality
        assert pred.is_symmetric

    def test_negative_width_rejected(self):
        with pytest.raises(BandConditionError):
            BandPredicate("A1", -1.0, 0.0)

    def test_infinite_width_rejected(self):
        with pytest.raises(BandConditionError):
            BandPredicate("A1", np.inf, 1.0)

    def test_matches_is_vectorised(self):
        pred = BandPredicate("A1", 1.0, 1.0)
        s = np.array([0.0, 0.0, 0.0])
        t = np.array([0.5, 1.0, 1.5])
        np.testing.assert_array_equal(pred.matches(s, t), [True, True, False])

    def test_asymmetric_matches(self):
        pred = BandPredicate("A1", 0.0, 2.0)  # 0 <= t - s <= 2
        assert pred.matches(np.array([1.0]), np.array([3.0]))[0]
        assert not pred.matches(np.array([1.0]), np.array([0.5]))[0]


class TestBandConditionConstruction:
    def test_from_mapping(self):
        cond = BandCondition({"x": 1.0, "y": (0.5, 1.5)})
        assert cond.dimensionality == 2
        assert cond.attributes == ("x", "y")
        assert cond.predicate_for("y").eps_left == 0.5

    def test_symmetric_constructor_scalar_width(self):
        cond = BandCondition.symmetric(["a", "b", "c"], 2.0)
        assert cond.dimensionality == 3
        assert np.allclose(cond.epsilons, 2.0)

    def test_symmetric_constructor_per_dimension(self):
        cond = BandCondition.symmetric(["a", "b"], [1.0, 3.0])
        assert np.allclose(cond.epsilons, [1.0, 3.0])

    def test_equi_join_constructor(self):
        cond = BandCondition.equi_join(["a", "b"])
        assert cond.is_equi_join

    def test_empty_condition_rejected(self):
        with pytest.raises(BandConditionError):
            BandCondition({})

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(BandConditionError):
            BandCondition([BandPredicate("a", 1, 1), BandPredicate("a", 2, 2)])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(BandConditionError):
            BandCondition.symmetric(["a", "b"], [1.0])

    def test_unknown_attribute_lookup(self):
        cond = BandCondition({"a": 1.0})
        with pytest.raises(BandConditionError):
            cond.predicate_for("missing")

    def test_validate_against(self):
        cond = BandCondition({"a": 1.0, "b": 1.0})
        cond.validate_against(["a", "b", "c"])
        with pytest.raises(BandConditionError):
            cond.validate_against(["a", "c"])

    def test_equality_and_hash(self):
        c1 = BandCondition({"a": 1.0})
        c2 = BandCondition({"a": 1.0})
        c3 = BandCondition({"a": 2.0})
        assert c1 == c2
        assert hash(c1) == hash(c2)
        assert c1 != c3

    def test_repr_mentions_attributes(self):
        cond = BandCondition({"lat": 0.5})
        assert "lat" in repr(cond)


class TestBandConditionEvaluation:
    def test_matches_pairwise(self):
        cond = BandCondition.symmetric(["a", "b"], 1.0)
        s = np.array([[0.0, 0.0], [0.0, 0.0]])
        t = np.array([[0.5, 0.5], [0.5, 2.0]])
        np.testing.assert_array_equal(cond.matches(s, t), [True, False])

    def test_matches_pair_scalar(self):
        cond = BandCondition.symmetric(["a"], 1.0)
        assert cond.matches_pair([0.0], [1.0])
        assert not cond.matches_pair([0.0], [1.5])

    def test_matches_wrong_dimensionality(self):
        cond = BandCondition.symmetric(["a", "b"], 1.0)
        with pytest.raises(BandConditionError):
            cond.matches(np.zeros((3, 1)), np.zeros((3, 1)))

    def test_epsilon_range_symmetric(self):
        cond = BandCondition.symmetric(["a"], 2.0)
        lower, upper = cond.epsilon_range(np.array([[10.0]]), around="t")
        assert lower[0, 0] == 8.0
        assert upper[0, 0] == 12.0

    def test_epsilon_range_asymmetric_sides_differ(self):
        cond = BandCondition({"a": (1.0, 3.0)})  # -1 <= t - s <= 3
        t_lower, t_upper = cond.epsilon_range(np.array([[10.0]]), around="t")
        s_lower, s_upper = cond.epsilon_range(np.array([[10.0]]), around="s")
        # Matching s for a t at 10: s in [t - eps_right, t + eps_left] = [7, 11].
        assert (t_lower[0, 0], t_upper[0, 0]) == (7.0, 11.0)
        # Matching t for an s at 10: t in [s - eps_left, s + eps_right] = [9, 13].
        assert (s_lower[0, 0], s_upper[0, 0]) == (9.0, 13.0)

    def test_epsilon_range_invalid_side(self):
        cond = BandCondition.symmetric(["a"], 1.0)
        with pytest.raises(BandConditionError):
            cond.epsilon_range(np.array([[0.0]]), around="x")

    @settings(max_examples=50, deadline=None)
    @given(
        s=st.floats(-100, 100),
        t=st.floats(-100, 100),
        eps=st.floats(0, 10),
    )
    def test_membership_matches_epsilon_range(self, s, t, eps):
        """(s, t) joins iff s lies in the epsilon-range around t (paper Section 2)."""
        cond = BandCondition.symmetric(["a"], eps)
        joins = cond.matches_pair([s], [t])
        lower, upper = cond.epsilon_range(np.array([[t]]), around="t")
        in_range = bool(lower[0, 0] <= s <= upper[0, 0])
        assert joins == in_range

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(-50, 50), min_size=1, max_size=20),
        eps=st.floats(0, 5),
    )
    def test_equi_join_is_special_case(self, values, eps):
        """With eps = 0 only exactly equal values join."""
        cond = BandCondition.symmetric(["a"], 0.0)
        arr = np.array(values)[:, None]
        matches = cond.matches(arr, arr)
        assert matches.all()
