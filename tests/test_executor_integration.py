"""Integration tests: every partitioner must produce the exact join result.

This is the central correctness property of the whole system (paper
Definition 1): under any of the implemented partitionings, the union of the
workers' local join outputs equals the single-machine band-join, with no
output pair produced twice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.csio import CSIOPartitioner
from repro.baselines.grid import GridEpsilonPartitioner
from repro.baselines.grid_star import GridStarPartitioner
from repro.baselines.iejoin import IEJoinPartitioner
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.config import LoadWeights
from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner
from repro.cost.model import default_running_time_model
from repro.data.generators import correlated_pair, uniform_relation
from repro.data.synthetic_real import ebird_cloud_pair
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join.sort_band import SortSweepJoin

ALL_PARTITIONERS = [
    RecPartPartitioner(),
    RecPartSPartitioner(),
    OneBucketPartitioner(),
    GridEpsilonPartitioner(),
    GridStarPartitioner(),
    CSIOPartitioner(),
    IEJoinPartitioner(size_per_block=400),
]


def _partitioner_id(partitioner) -> str:
    return partitioner.name


class TestExactOutputAcrossPartitioners:
    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=_partitioner_id)
    def test_pareto_2d(self, partitioner):
        s, t = correlated_pair(1500, 1500, dimensions=2, z=1.5, seed=41)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioning = partitioner.partition(s, t, condition, workers=5)
        result = DistributedBandJoinExecutor().execute(
            s, t, condition, partitioning, verify="pairs"
        )
        assert result.exact_output == result.total_output

    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=_partitioner_id)
    def test_asymmetric_band_condition(self, partitioner):
        s, t = correlated_pair(800, 900, dimensions=1, z=1.5, seed=42)
        condition = BandCondition({"A1": (0.02, 0.3)})
        partitioning = partitioner.partition(s, t, condition, workers=3)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=_partitioner_id)
    def test_unequal_input_sizes(self, partitioner):
        s, t = correlated_pair(300, 2500, dimensions=2, z=1.0, seed=43)
        condition = BandCondition.symmetric(["A1", "A2"], 0.2)
        partitioning = partitioner.partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    @pytest.mark.parametrize(
        "partitioner",
        [p for p in ALL_PARTITIONERS if not isinstance(p, (GridEpsilonPartitioner, GridStarPartitioner))],
        ids=_partitioner_id,
    )
    def test_equi_join(self, partitioner):
        """Band width zero (grid methods are undefined there, everything else works)."""
        rng = np.random.default_rng(0)
        s_values = rng.integers(0, 50, 800).astype(float)
        t_values = rng.integers(0, 50, 800).astype(float)
        from repro.data.relation import Relation

        s = Relation("S", {"A1": s_values})
        t = Relation("T", {"A1": t_values})
        condition = BandCondition.symmetric(["A1"], 0.0)
        partitioning = partitioner.partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    @pytest.mark.parametrize(
        "partitioner", [RecPartPartitioner(), CSIOPartitioner(), OneBucketPartitioner()],
        ids=_partitioner_id,
    )
    def test_spatiotemporal_join(self, partitioner):
        s, t = ebird_cloud_pair(1200, seed=3)
        condition = BandCondition.symmetric(["time", "latitude", "longitude"], 5.0)
        partitioning = partitioner.partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="count")

    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=_partitioner_id)
    def test_empty_output_join(self, partitioner):
        s = uniform_relation("S", 400, dimensions=1, low=0.0, high=1.0, seed=0)
        t = uniform_relation("T", 400, dimensions=1, low=10.0, high=11.0, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.1)
        partitioning = partitioner.partition(s, t, condition, workers=3)
        result = DistributedBandJoinExecutor().execute(
            s, t, condition, partitioning, verify="count"
        )
        assert result.total_output == 0


class TestExecutorBehaviour:
    def test_worker_count_mismatch_rejected(self):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        partitioning = OneBucketPartitioner().partition(s, t, condition, workers=4)
        with pytest.raises(ExecutionError):
            DistributedBandJoinExecutor().execute(
                s, t, condition, partitioning, cluster=SimulatedCluster(2)
            )

    def test_invalid_verify_mode(self):
        s, t = correlated_pair(200, 200, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.1)
        partitioning = OneBucketPartitioner().partition(s, t, condition, workers=2)
        with pytest.raises(ExecutionError):
            DistributedBandJoinExecutor().execute(
                s, t, condition, partitioning, verify="everything"
            )

    def test_predicted_join_time_attached(self):
        s, t = correlated_pair(800, 800, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.05)
        executor = DistributedBandJoinExecutor(cost_model=default_running_time_model())
        partitioning = RecPartSPartitioner().partition(s, t, condition, workers=3)
        result = executor.execute(s, t, condition, partitioning)
        assert result.predicted_join_time is not None
        assert result.predicted_join_time > 0

    def test_alternative_local_algorithm(self):
        s, t = correlated_pair(800, 800, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.05)
        executor = DistributedBandJoinExecutor(algorithm=SortSweepJoin())
        partitioning = RecPartSPartitioner().partition(s, t, condition, workers=3)
        executor.execute(s, t, condition, partitioning, verify="count")

    def test_summary_contains_paper_measures(self, weights):
        s, t = correlated_pair(600, 600, dimensions=1, seed=2)
        condition = BandCondition.symmetric(["A1"], 0.05)
        partitioning = CSIOPartitioner().partition(s, t, condition, workers=3)
        result = DistributedBandJoinExecutor(weights=weights).execute(
            s, t, condition, partitioning
        )
        summary = result.summary()
        for key in ("total_input", "max_worker_input", "max_worker_output", "method"):
            assert key in summary
        assert summary["method"] == "CSIO"

    def test_per_worker_input_counts_once_per_worker(self):
        """Definition 1 counts a tuple once per worker even if the worker holds it
        in several partition units (e.g. IEJoin block pairs)."""
        s, t = correlated_pair(1000, 1000, dimensions=1, z=1.5, seed=3)
        condition = BandCondition.symmetric(["A1"], 0.05)
        # One worker: all block pairs land on it, so its input must be exactly
        # |S| + |T| even though blocks participate in many pairs.
        partitioning = IEJoinPartitioner(size_per_block=200).partition(s, t, condition, 1)
        result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        assert result.total_input == len(s) + len(t)

    def test_worker_stats_sum_to_totals(self, weights):
        s, t = correlated_pair(900, 900, dimensions=2, z=1.5, seed=4)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        result = DistributedBandJoinExecutor(weights=weights).execute(
            s, t, condition, partitioning, verify="count"
        )
        assert sum(w.output for w in result.job.workers) == result.total_output
        assert sum(w.input_total for w in result.job.workers) == result.total_input
