"""Tests for the synthetic data generators (repro.data.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    REVERSE_PARETO_OFFSET,
    clustered_relation,
    correlated_pair,
    normal_relation,
    pareto_relation,
    pareto_values,
    reverse_pareto_relation,
    uniform_relation,
    zipf_relation,
)
from repro.exceptions import WorkloadError


class TestParetoValues:
    def test_values_above_one(self):
        values = pareto_values(5000, 1.5, np.random.default_rng(0))
        assert values.min() >= 1.0

    def test_skew_parameter_controls_tail(self):
        rng = np.random.default_rng(1)
        light_tail = pareto_values(20000, 2.5, rng)
        heavy_tail = pareto_values(20000, 0.8, np.random.default_rng(1))
        assert np.quantile(heavy_tail, 0.99) > np.quantile(light_tail, 0.99)

    def test_empirical_cdf_matches_pareto(self):
        """P(X <= x) should be about 1 - x^-z (the power-law 80-20 shape)."""
        values = pareto_values(50000, 1.5, np.random.default_rng(2))
        for x in (2.0, 4.0, 8.0):
            empirical = np.mean(values <= x)
            expected = 1 - x**-1.5
            assert abs(empirical - expected) < 0.02

    def test_invalid_shape_rejected(self):
        with pytest.raises(WorkloadError):
            pareto_values(10, 0.0, np.random.default_rng(0))


class TestRelationGenerators:
    def test_pareto_relation_shape(self):
        rel = pareto_relation("S", 1000, dimensions=3, z=1.5, seed=0)
        assert len(rel) == 1000
        assert rel.column_names == ("A1", "A2", "A3")

    def test_pareto_relation_extra_columns(self):
        rel = pareto_relation("S", 100, dimensions=1, extra_columns=2, seed=0)
        assert "P1" in rel and "P2" in rel

    def test_pareto_relation_rounding_creates_duplicates(self):
        rel = pareto_relation("S", 20000, dimensions=1, z=1.5, seed=0, decimals=3)
        values = rel["A1"]
        assert np.unique(values).size < values.size

    def test_pareto_relation_deterministic_per_seed(self):
        a = pareto_relation("S", 500, seed=42)
        b = pareto_relation("S", 500, seed=42)
        np.testing.assert_array_equal(a["A1"], b["A1"])

    def test_reverse_pareto_is_mirrored(self):
        rel = reverse_pareto_relation("T", 5000, dimensions=1, z=1.5, seed=0)
        values = rel["A1"]
        assert values.max() < REVERSE_PARETO_OFFSET
        # Skewed toward the offset: most mass close to it.
        assert np.mean(values > REVERSE_PARETO_OFFSET - 10) > 0.5

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError):
            pareto_relation("S", -1)

    def test_uniform_relation_range(self):
        rel = uniform_relation("U", 1000, dimensions=2, low=5.0, high=6.0, seed=0)
        for col in ("A1", "A2"):
            assert rel[col].min() >= 5.0
            assert rel[col].max() < 6.0

    def test_uniform_empty_range_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_relation("U", 10, low=1.0, high=1.0)

    def test_normal_relation(self):
        rel = normal_relation("N", 5000, mean=3.0, std=0.5, seed=0)
        assert abs(rel["A1"].mean() - 3.0) < 0.1

    def test_normal_invalid_std(self):
        with pytest.raises(WorkloadError):
            normal_relation("N", 10, std=0.0)

    def test_zipf_relation_heavy_hitters(self):
        rel = zipf_relation("Z", 20000, n_distinct=100, exponent=1.5, seed=0)
        values, counts = np.unique(rel["A1"], return_counts=True)
        assert counts.max() > 3 * counts.mean()

    def test_zipf_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            zipf_relation("Z", 10, n_distinct=0)
        with pytest.raises(WorkloadError):
            zipf_relation("Z", 10, exponent=0.0)


class TestClusteredRelation:
    def test_points_concentrate_around_centers(self):
        centers = [[0.0, 0.0], [100.0, 100.0]]
        rel = clustered_relation("C", 2000, centers=centers, spreads=1.0, seed=0)
        matrix = rel.join_matrix(["A1", "A2"])
        near_any = np.zeros(len(rel), dtype=bool)
        for center in centers:
            near_any |= np.linalg.norm(matrix - np.asarray(center), axis=1) < 10.0
        assert near_any.mean() > 0.99

    def test_weights_control_cluster_sizes(self):
        centers = [[0.0], [1000.0]]
        rel = clustered_relation(
            "C", 5000, centers=centers, spreads=1.0, weights=[0.9, 0.1], seed=0
        )
        near_first = np.abs(rel["A1"]) < 100
        assert near_first.mean() > 0.8

    def test_custom_attribute_names(self):
        rel = clustered_relation(
            "C", 10, centers=[[0.0, 0.0]], spreads=1.0, attribute_names=["lat", "lon"], seed=0
        )
        assert rel.column_names == ("lat", "lon")

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            clustered_relation("C", 10, centers=[[0.0]], spreads=0.0)
        with pytest.raises(WorkloadError):
            clustered_relation("C", 10, centers=[[0.0]], spreads=1.0, weights=[0.0])
        with pytest.raises(WorkloadError):
            clustered_relation("C", 10, centers=[[0.0]], spreads=1.0, attribute_names=["a", "b"])
        with pytest.raises(WorkloadError):
            clustered_relation("C", 10, centers=np.empty((0, 2)), spreads=1.0)


class TestCorrelatedPair:
    def test_forward_pair_shares_dense_region(self):
        s, t = correlated_pair(5000, 5000, dimensions=1, z=1.5, seed=0)
        # Both skewed toward 1: medians close together.
        assert abs(np.median(s["A1"]) - np.median(t["A1"])) < 1.0

    def test_reverse_pair_is_anti_correlated(self):
        s, t = correlated_pair(5000, 5000, dimensions=1, z=1.5, reverse=True, seed=0)
        assert np.median(t["A1"]) > np.median(s["A1"]) + 1e5

    def test_pair_sizes(self):
        s, t = correlated_pair(100, 200, dimensions=2, seed=0)
        assert len(s) == 100 and len(t) == 200
        assert s.column_names == t.column_names
