"""Tests for the CSIO and distributed IEJoin baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.csio import CSIOPartitioner, build_coarsened_matrix
from repro.baselines.iejoin import (
    IEJoinPartitioner,
    block_boundaries,
    joinable_block_pairs,
)
from repro.baselines.quantiles import approximate_quantiles, ordering_key
from repro.data.generators import correlated_pair, uniform_relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


class TestCSIOMatrix:
    def test_candidate_band_width_follows_epsilon(self, rng):
        """With row-major ordering, the candidate region is a diagonal band whose
        width grows with the band width (paper Figure 6 / Section 5.2)."""
        s, t = correlated_pair(4000, 4000, dimensions=1, z=1.5, seed=20)
        narrow_condition = BandCondition.symmetric(["A1"], 0.001)
        wide_condition = BandCondition.symmetric(["A1"], 5.0)
        counts = {}
        for label, condition in (("narrow", narrow_condition), ("wide", wide_condition)):
            input_sample = draw_input_sample(s, t, condition, 1000, rng)
            output_sample = draw_output_sample(s, t, condition, 200, rng)
            keys_s = ordering_key(input_sample.s_values, "row-major")
            keys_t = ordering_key(input_sample.t_values, "row-major")
            s_bounds = approximate_quantiles(keys_s, 16)
            t_bounds = approximate_quantiles(keys_t, 16)
            matrix = build_coarsened_matrix(
                input_sample, output_sample, condition, s_bounds, t_bounds, "row-major"
            )
            counts[label] = matrix.n_candidate_cells
        assert counts["narrow"] < counts["wide"]

    def test_block_ordering_creates_denser_matrix(self, rng):
        """Paper Figure 8: block-style ordering widens the candidate region for
        multidimensional joins."""
        s, t = correlated_pair(4000, 4000, dimensions=2, z=1.0, seed=21)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        input_sample = draw_input_sample(s, t, condition, 1500, rng)
        output_sample = draw_output_sample(s, t, condition, 300, rng)
        cells = {}
        for ordering in ("row-major", "block"):
            keys_s = ordering_key(input_sample.s_values, ordering)
            keys_t = ordering_key(input_sample.t_values, ordering)
            s_bounds = approximate_quantiles(keys_s, 20)
            t_bounds = approximate_quantiles(keys_t, 20)
            matrix = build_coarsened_matrix(
                input_sample, output_sample, condition, s_bounds, t_bounds, ordering
            )
            cells[ordering] = matrix.n_candidate_cells
        assert cells["row-major"] <= cells["block"] * 1.2


class TestCSIOPartitioner:
    def test_end_to_end_correctness(self):
        s, t = correlated_pair(2500, 2500, dimensions=2, z=1.5, seed=22)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        partitioning = CSIOPartitioner().partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    def test_at_most_one_rectangle_per_worker(self):
        s, t = correlated_pair(2000, 2000, dimensions=1, z=1.5, seed=23)
        condition = BandCondition.symmetric(["A1"], 0.05)
        partitioning = CSIOPartitioner().partition(s, t, condition, workers=6)
        assert partitioning.n_units <= 6
        assert np.unique(partitioning.unit_workers()).size == partitioning.n_units

    def test_output_statistics_guide_the_cover(self):
        """CSIO balances load better than plain 1-per-quantile partitioning on
        skewed data — its max worker load must be well below a single-worker run."""
        s, t = correlated_pair(3000, 3000, dimensions=1, z=2.0, seed=24)
        condition = BandCondition.symmetric(["A1"], 0.02)
        executor = DistributedBandJoinExecutor()
        partitioning = CSIOPartitioner().partition(s, t, condition, workers=4)
        result = executor.execute(s, t, condition, partitioning, verify="count")
        single = result.weights.load(len(s) + len(t), result.total_output)
        assert result.max_worker_load < 0.7 * single

    def test_granularity_validation(self):
        with pytest.raises(PartitioningError):
            CSIOPartitioner(granularity=0)

    def test_equi_join_support(self):
        """Unlike Grid-eps, CSIO handles band width zero."""
        s, t = correlated_pair(2000, 2000, dimensions=1, z=1.5, seed=25)
        condition = BandCondition.symmetric(["A1"], 0.0)
        partitioning = CSIOPartitioner().partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="count")

    def test_block_ordering_end_to_end(self):
        s, t = correlated_pair(1500, 1500, dimensions=2, z=1.0, seed=26)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioning = CSIOPartitioner(ordering="block").partition(s, t, condition, workers=4)
        result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        assert result.total_output >= 0  # executes without error; candidacy is approximate


class TestIEJoinBlocks:
    def test_block_boundaries_sizes(self, rng):
        values = rng.uniform(0, 100, 10_000)
        boundaries = block_boundaries(values, 2500)
        assert boundaries.size == 3  # four blocks

    def test_single_block(self, rng):
        assert block_boundaries(rng.uniform(size=100), 1000).size == 0

    def test_invalid_block_size(self):
        with pytest.raises(PartitioningError):
            block_boundaries(np.arange(10.0), 0)

    def test_joinable_pairs_cover_diagonal(self):
        s_bounds = np.array([10.0, 20.0, 30.0])
        t_bounds = np.array([10.0, 20.0, 30.0])
        pairs = joinable_block_pairs(s_bounds, t_bounds, epsilon=1.0)
        pair_set = {tuple(p) for p in pairs}
        for i in range(4):
            assert (i, i) in pair_set
        # Far-apart blocks are not joinable with a small epsilon.
        assert (0, 3) not in pair_set

    def test_larger_epsilon_adds_pairs(self):
        s_bounds = np.array([10.0, 20.0, 30.0])
        t_bounds = np.array([10.0, 20.0, 30.0])
        narrow = joinable_block_pairs(s_bounds, t_bounds, epsilon=0.5)
        wide = joinable_block_pairs(s_bounds, t_bounds, epsilon=15.0)
        assert wide.shape[0] > narrow.shape[0]


class TestIEJoinPartitioner:
    def test_end_to_end_correctness(self):
        s, t = correlated_pair(2500, 2500, dimensions=2, z=1.5, seed=27)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        partitioning = IEJoinPartitioner(size_per_block=500).partition(s, t, condition, 4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    def test_block_size_controls_duplication(self):
        """Smaller blocks mean more joinable pairs sharing blocks, hence more
        duplication (the effect swept in paper Table 11)."""
        s, t = correlated_pair(4000, 4000, dimensions=1, z=1.5, seed=28)
        condition = BandCondition.symmetric(["A1"], 0.05)
        executor = DistributedBandJoinExecutor()
        small_blocks = executor.execute(
            s, t, condition, IEJoinPartitioner(size_per_block=250).partition(s, t, condition, 8)
        )
        large_blocks = executor.execute(
            s, t, condition, IEJoinPartitioner(size_per_block=2000).partition(s, t, condition, 8)
        )
        assert small_blocks.total_input >= large_blocks.total_input

    def test_quantile_partitioning_cuts_dense_regions(self):
        """On skewed data IEJoin duplicates noticeably more input than RecPart-S
        (the core observation of paper Tables 7 / 11)."""
        from repro.core.recpart import RecPartSPartitioner

        s, t = correlated_pair(4000, 4000, dimensions=1, z=1.5, seed=29)
        condition = BandCondition.symmetric(["A1"], 0.05)
        executor = DistributedBandJoinExecutor()
        iejoin = executor.execute(
            s, t, condition, IEJoinPartitioner(size_per_block=500).partition(s, t, condition, 8)
        )
        recpart = executor.execute(
            s, t, condition, RecPartSPartitioner().partition(s, t, condition, 8)
        )
        assert iejoin.total_input > recpart.total_input

    def test_invalid_parameters(self):
        with pytest.raises(PartitioningError):
            IEJoinPartitioner(size_per_block=0)
        with pytest.raises(PartitioningError):
            IEJoinPartitioner(sort_dimension=-1)
        s, t = correlated_pair(100, 100, dimensions=1, seed=0)
        with pytest.raises(PartitioningError):
            IEJoinPartitioner(sort_dimension=4).partition(
                s, t, BandCondition.symmetric(["A1"], 0.1), 2
            )

    def test_describe(self):
        s, t = correlated_pair(1000, 1000, dimensions=1, z=1.5, seed=30)
        condition = BandCondition.symmetric(["A1"], 0.05)
        partitioning = IEJoinPartitioner(size_per_block=250).partition(s, t, condition, 4)
        info = partitioning.describe()
        assert info["s_blocks"] >= 2
        assert info["block_pairs"] == partitioning.n_units
