"""Tests for the pluggable column-storage layer (repro.data.storage).

The central property is storage transparency: whether a relation lives on
the heap or in memory-mapped segments, every observable — column values,
content fingerprints, join pair sets on every backend and every local-join
kernel — must be identical.  On top of that the mmap store's own mechanics
are pinned down: segment-crossing reads and gathers, delta appends as
segment-chain unions, incremental compaction, pickling by path, and the
catalog's spill/compact lifecycle.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import correlated_pair
from repro.data.relation import Relation, fingerprint_columns
from repro.data.storage import (
    InMemoryColumnStore,
    MmapColumnStore,
    SpillArena,
    block_spans,
)
from repro.engine import ParallelJoinEngine
from repro.exceptions import SchemaError, ServiceError
from repro.geometry.band import BandCondition
from repro.local_join.base import canonical_pair_order
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.obs.process import current_rss_bytes, peak_rss_bytes, rss_supported
from repro.service.catalog import RelationCatalog

#: Small enough to force several segments and several streaming chunks on
#: the few-thousand-row test relations.
TINY = dict(block_bytes=4096, segment_bytes=4096)


def _random_columns(rng, n):
    return {
        "A1": rng.normal(size=n),
        "A2": rng.uniform(-5, 5, size=n).astype(np.float32),
        "tag": rng.integers(0, 1000, size=n),
    }


def _spilled(relation: Relation, directory) -> Relation:
    return relation.spill(str(directory), **TINY)


# --------------------------------------------------------------------- #
# Store mechanics
# --------------------------------------------------------------------- #
class TestMmapColumnStore:
    def test_reads_slices_and_gathers_across_segments(self, tmp_path):
        rng = np.random.default_rng(3)
        columns = _random_columns(rng, 3000)
        memory = InMemoryColumnStore(columns)
        store = MmapColumnStore.from_store(memory, str(tmp_path), **TINY)

        assert store.rows == 3000
        assert store.backend == "mmap"
        assert store.segment_count > 1
        assert store.column_names == memory.column_names
        for name, reference in columns.items():
            assert store.dtype(name) == reference.dtype
            np.testing.assert_array_equal(store.column(name), reference)
            for start, stop in ((0, 7), (995, 2005), (2990, 3000), (5, 5)):
                np.testing.assert_array_equal(
                    store.read(name, start, stop), reference[start:stop]
                )
            rows = rng.integers(0, 3000, size=500)  # unsorted, with duplicates
            np.testing.assert_array_equal(store.take(name, rows), reference[rows])
            stats = store.column_stats(name)
            assert stats is not None
            assert stats[0] == pytest.approx(float(reference.min()))
            assert stats[1] == pytest.approx(float(reference.max()))

    def test_pickle_round_trips_by_path(self, tmp_path):
        rng = np.random.default_rng(4)
        columns = {"x": rng.normal(size=800)}
        store = MmapColumnStore.from_store(
            InMemoryColumnStore(columns), str(tmp_path), **TINY
        )
        clone = pickle.loads(pickle.dumps(store))
        assert clone.backend == "mmap"
        assert clone.segment_count == store.segment_count
        np.testing.assert_array_equal(clone.column("x"), columns["x"])
        # The payload crossed as paths, not bytes: same backing files.
        assert sorted(clone.file_paths()) == sorted(store.file_paths())

    def test_chunked_write_equals_bulk_write(self, tmp_path):
        rng = np.random.default_rng(5)
        full = {"a": rng.normal(size=2500), "b": rng.integers(0, 9, size=2500)}
        chunks = (
            {name: column[start:stop] for name, column in full.items()}
            for start, stop in block_spans(2500, 400)
        )
        streamed = MmapColumnStore.write(str(tmp_path / "stream"), chunks, **TINY)
        bulk = MmapColumnStore.write(str(tmp_path / "bulk"), full, **TINY)
        for name in full:
            np.testing.assert_array_equal(streamed.column(name), full[name])
            np.testing.assert_array_equal(bulk.column(name), full[name])

    def test_appended_chain_and_compaction_round_trip(self, tmp_path):
        rng = np.random.default_rng(6)
        base = {"v": rng.normal(size=1500)}
        delta = {"v": rng.normal(size=700)}
        base_store = MmapColumnStore.write(str(tmp_path / "base"), base, **TINY)
        delta_store = MmapColumnStore.write(str(tmp_path / "delta"), delta, **TINY)

        union = base_store.with_appended(delta_store)
        expected = np.concatenate([base["v"], delta["v"]])
        assert union.rows == 2200
        assert union.segment_count == base_store.segment_count + delta_store.segment_count
        np.testing.assert_array_equal(union.column("v"), expected)

        rewritten = union.compacted(str(tmp_path / "rewrite"), **TINY)
        assert rewritten.rows == 2200
        np.testing.assert_array_equal(rewritten.column("v"), expected)

    def test_appending_requires_mmap_and_matching_schema(self, tmp_path):
        store = MmapColumnStore.write(str(tmp_path / "a"), {"v": np.arange(5.0)})
        other = MmapColumnStore.write(str(tmp_path / "b"), {"w": np.arange(5.0)})
        with pytest.raises(SchemaError):
            store.with_appended(InMemoryColumnStore({"v": np.arange(3.0)}))
        with pytest.raises(SchemaError):
            store.with_appended(other)


# --------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------- #
class TestFingerprints:
    @given(
        rows=st.integers(0, 400),
        seed=st.integers(0, 10_000),
        dtype=st.sampled_from(["float64", "float32", "int64", "int32"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_hash_equals_whole_array_hash(self, rows, seed, dtype):
        """The streaming fingerprint must equal the naive whole-bytes digest."""
        rng = np.random.default_rng(seed)
        column = (rng.normal(size=rows) * 100).astype(dtype)
        naive = hashlib.blake2b(digest_size=16)
        naive.update(f"{rows}:1".encode())
        naive.update(b"c")
        naive.update(str(column.dtype).encode())
        naive.update(np.ascontiguousarray(column).tobytes())
        assert fingerprint_columns([("c", column)], rows) == naive.hexdigest()

    def test_mmap_and_memory_fingerprints_agree(self, tmp_path):
        rng = np.random.default_rng(7)
        relation = Relation("R", _random_columns(rng, 2000))
        spilled = _spilled(relation, tmp_path)
        fresh = Relation.from_store("R", spilled.store)  # no memoized carryover
        for attrs in (("A1",), ("A1", "A2"), ("tag",)):
            assert relation.fingerprint(attrs) == spilled.fingerprint(attrs)
            assert relation.fingerprint(attrs) == fresh.fingerprint(attrs)

    def test_fingerprint_differs_when_content_differs(self, tmp_path):
        rng = np.random.default_rng(8)
        a = Relation("R", {"v": rng.normal(size=500)})
        changed = a.column("v").copy()
        changed[250] += 1e-9
        b = Relation("R", {"v": changed})
        assert _spilled(a, tmp_path / "a").fingerprint(("v",)) != _spilled(
            b, tmp_path / "b"
        ).fingerprint(("v",))


# --------------------------------------------------------------------- #
# Relation-level transparency
# --------------------------------------------------------------------- #
class TestRelationStorageTransparency:
    def test_join_matrix_slices_take_bounds_describe(self, tmp_path):
        rng = np.random.default_rng(9)
        relation = Relation("R", _random_columns(rng, 2400))
        spilled = _spilled(relation, tmp_path)
        attrs = ("A1", "A2")

        np.testing.assert_array_equal(
            relation.join_matrix(attrs), spilled.join_matrix(attrs)
        )
        chunks = list(spilled.iter_join_matrix(attrs, max_bytes=2048))
        assert len(chunks) > 1
        np.testing.assert_array_equal(
            np.vstack([chunk for _, _, chunk in chunks]), relation.join_matrix(attrs)
        )
        rows = rng.integers(0, 2400, size=300)
        for name in relation.column_names:
            np.testing.assert_array_equal(
                relation.take(rows).column(name), spilled.take(rows).column(name)
            )
        np.testing.assert_allclose(relation.bounds(attrs), spilled.bounds(attrs))
        mem_desc, mmap_desc = relation.describe(), spilled.describe()
        for name in relation.column_names:
            assert mem_desc[name]["min"] == pytest.approx(mmap_desc[name]["min"])
            assert mem_desc[name]["max"] == pytest.approx(mmap_desc[name]["max"])

    def test_concat_unions_segments_without_copying(self, tmp_path):
        rng = np.random.default_rng(10)
        a = _spilled(Relation("R", _random_columns(rng, 900)), tmp_path / "a")
        b = _spilled(Relation("R", _random_columns(rng, 400)), tmp_path / "b")
        both = a.concat(b)
        assert both.storage == "mmap"
        assert both.segment_count == a.segment_count + b.segment_count
        assert len(both) == 1300
        np.testing.assert_array_equal(
            both.column("A1"), np.concatenate([a.column("A1"), b.column("A1")])
        )
        # Empty sides short-circuit without touching storage.
        empty = Relation("R", {n: np.empty(0, a.store.dtype(n)) for n in a.column_names})
        assert a.concat(empty).segment_count == a.segment_count
        assert len(empty.concat(a)) == len(a)


# --------------------------------------------------------------------- #
# Engine equivalence: the tentpole property
# --------------------------------------------------------------------- #
def _band_problem(tmp_path, n=1400, dims=2, seed=11, eps=0.05):
    s, t = correlated_pair(n, n + 120, dimensions=dims, z=1.5, seed=seed)
    condition = BandCondition.symmetric([f"A{i + 1}" for i in range(dims)], eps)
    s_mmap = _spilled(s, tmp_path / "s")
    t_mmap = _spilled(t, tmp_path / "t")
    return s, t, s_mmap, t_mmap, condition


def _reference_pairs(s, t, condition):
    return canonical_pair_order(
        IndexNestedLoopJoin().join(
            s.join_matrix(condition.attributes),
            t.join_matrix(condition.attributes),
            condition,
        )
    )


class TestStreamedEngineEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_pair_sets_match_memory_path_on_every_backend(self, tmp_path, backend):
        from repro.core.recpart import RecPartPartitioner

        s, t, s_mmap, t_mmap, condition = _band_problem(tmp_path)
        plan = RecPartPartitioner().partition(s, t, condition, workers=4)
        engine = ParallelJoinEngine(
            backend=backend, spill_dir=str(tmp_path), chunk_bytes=8192
        )
        streamed = engine.execute(s_mmap, t_mmap, condition, plan, materialize=True)
        memory = engine.execute(s, t, condition, plan, materialize=True)
        expected = _reference_pairs(s, t, condition)
        np.testing.assert_array_equal(canonical_pair_order(streamed.pairs), expected)
        np.testing.assert_array_equal(canonical_pair_order(memory.pairs), expected)
        assert streamed.total_output == memory.total_output
        assert streamed.job.total_input == memory.job.total_input

    @pytest.mark.parametrize(
        "algorithm", ["index-nested-loop", "sort-sweep", "iejoin-local", "auto"]
    )
    def test_pair_sets_match_on_every_kernel(self, tmp_path, algorithm):
        from repro.core.recpart import RecPartPartitioner

        s, t, s_mmap, t_mmap, condition = _band_problem(tmp_path, n=1000, seed=12)
        plan = RecPartPartitioner().partition(s, t, condition, workers=3)
        engine = ParallelJoinEngine(
            backend="serial",
            algorithm=algorithm,
            spill_dir=str(tmp_path),
            chunk_bytes=8192,
        )
        streamed = engine.execute(s_mmap, t_mmap, condition, plan, materialize=True)
        np.testing.assert_array_equal(
            canonical_pair_order(streamed.pairs), _reference_pairs(s, t, condition)
        )

    def test_count_only_matches_materialized_count(self, tmp_path):
        from repro.core.recpart import RecPartPartitioner

        s, t, s_mmap, t_mmap, condition = _band_problem(tmp_path, n=900, seed=13)
        plan = RecPartPartitioner().partition(s, t, condition, workers=4)
        engine = ParallelJoinEngine(backend="serial", spill_dir=str(tmp_path))
        counted = engine.execute(s_mmap, t_mmap, condition, plan, materialize=False)
        assert counted.pairs is None
        assert counted.total_output == _reference_pairs(s, t, condition).shape[0]

    def test_spilled_task_path_matches(self, tmp_path, monkeypatch):
        """Force the disk-backed task store even for small inputs."""
        import repro.engine.backends as backends_mod
        from repro.core.recpart import RecPartPartitioner

        monkeypatch.setattr(backends_mod, "TASK_SPILL_BYTES", 2048)
        s, t, s_mmap, t_mmap, condition = _band_problem(tmp_path, n=1100, seed=14)
        plan = RecPartPartitioner().partition(s, t, condition, workers=4)
        for backend in ("serial", "processes"):
            engine = ParallelJoinEngine(
                backend=backend, spill_dir=str(tmp_path), chunk_bytes=8192
            )
            streamed = engine.execute(s_mmap, t_mmap, condition, plan, materialize=True)
            np.testing.assert_array_equal(
                canonical_pair_order(streamed.pairs), _reference_pairs(s, t, condition)
            )


# --------------------------------------------------------------------- #
# Catalog lifecycle: spill on register, delta appends, compaction
# --------------------------------------------------------------------- #
class TestCatalogOutOfCore:
    def test_register_spills_past_threshold_only(self, tmp_path):
        rng = np.random.default_rng(15)
        catalog = RelationCatalog(
            storage="mmap", spill_dir=str(tmp_path), spill_threshold_bytes=8192
        )
        big = catalog.register("big", {"v": rng.normal(size=5000)})
        small = catalog.register("small", {"v": rng.normal(size=10)})
        assert big.storage == "mmap"
        assert small.storage == "memory"
        assert catalog.describe()["big"]["storage"] == "mmap"

    def test_delta_append_and_compact_round_trip(self, tmp_path):
        rng = np.random.default_rng(16)
        mmap_cat = RelationCatalog(
            storage="mmap", spill_dir=str(tmp_path), spill_threshold_bytes=1
        )
        mem_cat = RelationCatalog()
        parts = [rng.normal(size=n) for n in (2000, 300, 450, 120)]
        mmap_cat.register("r", {"v": parts[0]})
        mem_cat.register("r", {"v": parts[0]})
        for part in parts[1:]:
            mmap_snap = mmap_cat.append("r", {"v": part})
            mem_snap = mem_cat.append("r", {"v": part})
            assert mmap_snap.version == mem_snap.version
            np.testing.assert_array_equal(
                mmap_snap.full.column("v"), mem_snap.full.column("v")
            )
        mmap_done = mmap_cat.compact("r")
        mem_done = mem_cat.compact("r")
        expected = np.concatenate(parts)
        assert mmap_done.delta is None and mem_done.delta is None
        assert mmap_done.version == mem_done.version
        assert mmap_done.base_version == mem_done.base_version
        assert mmap_done.storage == "mmap"
        np.testing.assert_array_equal(mmap_done.base.column("v"), expected)
        assert mmap_done.base.fingerprint(("v",)) == mem_done.base.fingerprint(("v",))

    def test_repeated_compaction_bounds_segment_count(self, tmp_path):
        from repro.config import MAX_SEGMENTS_BEFORE_REWRITE

        rng = np.random.default_rng(17)
        catalog = RelationCatalog(
            storage="mmap", spill_dir=str(tmp_path), spill_threshold_bytes=1
        )
        catalog.register("r", {"v": rng.normal(size=50)})
        for _ in range(3 * MAX_SEGMENTS_BEFORE_REWRITE):
            catalog.append("r", {"v": rng.normal(size=50)})
            catalog.compact("r")
        assert catalog.get("r").segment_count <= MAX_SEGMENTS_BEFORE_REWRITE + 1
        assert len(catalog.get("r").base) == 50 * (3 * MAX_SEGMENTS_BEFORE_REWRITE + 1)

    def test_owned_spill_dir_cleanup_and_validation(self, tmp_path):
        owned = RelationCatalog(storage="mmap", spill_threshold_bytes=1)
        owned.register("r", {"v": np.arange(100.0)})
        root = owned.spill_dir
        assert os.path.isdir(root)
        owned.cleanup()
        assert not os.path.exists(root)

        provided = RelationCatalog(storage="mmap", spill_dir=str(tmp_path / "keep"))
        provided.register("r", {"v": np.arange(100.0)})
        provided.cleanup()
        assert os.path.isdir(str(tmp_path / "keep"))

        with pytest.raises(ServiceError):
            RelationCatalog(storage="ssd")
        with pytest.raises(ServiceError):
            RelationCatalog(spill_threshold_bytes=0)


# --------------------------------------------------------------------- #
# Process RSS accounting
# --------------------------------------------------------------------- #
class TestProcessRss:
    def test_readings_are_positive_and_ordered(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        assert current > 0
        assert peak >= 0
        if rss_supported():
            assert peak >= current // 2  # same order of magnitude

    def test_scheduler_metrics_surface_peak_rss(self):
        from repro.service.scheduler import SchedulerMetrics

        metrics = SchedulerMetrics()
        metrics.sample_rss()
        assert metrics.peak_rss_bytes > 0
        assert metrics.snapshot()["peak_rss_bytes"] > 0


# --------------------------------------------------------------------- #
# Spill arena scratch files
# --------------------------------------------------------------------- #
class TestSpillArena:
    def test_writer_append_finish_and_cleanup(self, tmp_path):
        with SpillArena(str(tmp_path / "arena")) as arena:
            writer = arena.writer(np.int64)
            writer.append(np.arange(10, dtype=np.int64))
            writer.append(np.arange(10, 25, dtype=np.int64))
            out = writer.finish()
            np.testing.assert_array_equal(out, np.arange(25))
            matrix = arena.empty_matrix(float, 6, 3)
            matrix[:] = 2.5
            assert matrix.shape == (6, 3)
        # Owned directories vanish with the context.
        with SpillArena() as owned:
            root = owned.directory
            owned.writer(float).append(np.ones(4))
        assert not os.path.exists(root)
