"""Tests for the split tree and its routing (repro.core.split_tree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.core.partition import OptimizationContext
from repro.core.split import SplitDecision, find_best_split
from repro.core.scoring import SplitScore
from repro.core.split_tree import SplitTree
from repro.data.generators import correlated_pair
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


@pytest.fixture
def context(rng) -> OptimizationContext:
    s, t = correlated_pair(2500, 2500, dimensions=2, z=1.5, seed=9)
    condition = BandCondition.symmetric(["A1", "A2"], 0.05)
    return OptimizationContext(
        condition=condition,
        workers=4,
        weights=LoadWeights(),
        input_sample=draw_input_sample(s, t, condition, 1500, rng),
        output_sample=draw_output_sample(s, t, condition, 500, rng),
    )


def _manual_split(dim: int, value: float, side: str = "T") -> SplitDecision:
    return SplitDecision(
        kind="regular",
        score=SplitScore.from_deltas(1.0, 0.0),
        variance_reduction=1.0,
        duplication_increase=0.0,
        dimension=dim,
        value=value,
        duplicated_side=side,
    )


class TestSplitTreeGrowth:
    def test_initial_tree_has_single_leaf(self, context):
        tree = SplitTree(context)
        assert tree.n_leaves == 1
        assert tree.root.is_leaf
        root_leaf = tree.root.leaf
        assert root_leaf.s_rows.size == context.input_sample.s_values.shape[0]

    def test_regular_split_creates_two_children(self, context):
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        children = tree.apply_split(tree.root.node_id, _manual_split(0, median))
        assert len(children) == 2
        assert tree.n_leaves == 2
        assert not tree.root.is_leaf

    def test_sample_conservation_for_partitioned_side(self, context):
        """The partitioned side (S for a T-split) is split without duplication."""
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        left, right = tree.apply_split(tree.root.node_id, _manual_split(0, median, side="T"))
        n_s = context.input_sample.s_values.shape[0]
        assert left.s_rows.size + right.s_rows.size == n_s
        assert np.intersect1d(left.s_rows, right.s_rows).size == 0

    def test_duplicated_side_can_overlap(self, context):
        tree = SplitTree(context)
        # Split right through the dense region so T tuples straddle the boundary.
        dense_value = float(np.quantile(context.input_sample.t_values[:, 0], 0.2))
        left, right = tree.apply_split(
            tree.root.node_id, _manual_split(0, dense_value, side="T")
        )
        n_t = context.input_sample.t_values.shape[0]
        assert left.t_rows.size + right.t_rows.size >= n_t
        # Duplicated sample tuples are exactly those within band width of the boundary.
        epsilon = context.epsilons[0]
        values = context.input_sample.t_values[:, 0]
        expected_duplicates = int(
            np.count_nonzero((values >= dense_value - epsilon) & (values < dense_value + epsilon))
        )
        assert (left.t_rows.size + right.t_rows.size) - n_t == expected_duplicates

    def test_output_ownership_is_disjoint(self, context):
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        left, right = tree.apply_split(tree.root.node_id, _manual_split(0, median))
        n_out = len(context.output_sample)
        assert left.out_rows.size + right.out_rows.size == n_out

    def test_grid_split_updates_leaf_in_place(self, context):
        tree = SplitTree(context)
        decision = SplitDecision(
            kind="grid",
            score=SplitScore.from_deltas(1.0, 1.0),
            variance_reduction=1.0,
            duplication_increase=1.0,
            grid_increment="row",
        )
        (leaf,) = tree.apply_split(tree.root.node_id, decision)
        assert leaf.grid_rows == 2
        assert tree.n_leaves == 1

    def test_cannot_split_inner_node(self, context):
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        tree.apply_split(tree.root.node_id, _manual_split(0, median))
        with pytest.raises(PartitioningError):
            tree.apply_split(tree.root.node_id, _manual_split(1, median))

    def test_snapshot_reflects_leaves(self, context):
        tree = SplitTree(context)
        snapshot0 = tree.snapshot()
        assert snapshot0 == {tree.root.node_id: (1, 1)}
        median = float(np.median(context.input_sample.s_values[:, 0]))
        tree.apply_split(tree.root.node_id, _manual_split(0, median))
        snapshot1 = tree.snapshot()
        assert len(snapshot1) == 2
        assert tree.root.node_id not in snapshot1


class TestRouting:
    def _grown_tree(self, context, n_splits=6):
        tree = SplitTree(context)
        for _ in range(n_splits):
            # Greedily split the best leaf, like the real optimizer.
            best_leaf, best_decision = None, None
            for leaf in tree.leaves():
                decision = find_best_split(leaf, context)
                if decision is None:
                    continue
                if best_decision is None or decision.score > best_decision.score:
                    best_leaf, best_decision = leaf, decision
            if best_decision is None:
                break
            tree.apply_split(best_leaf.node_id, best_decision)
        return tree

    def test_routing_covers_every_tuple(self, context, rng):
        tree = self._grown_tree(context)
        partitioning = tree.build_partitioning(tree.snapshot(), workers=4, method="test")
        s, t = correlated_pair(2000, 2000, dimensions=2, z=1.5, seed=100)
        for relation, side in ((s, "S"), (t, "T")):
            matrix = relation.join_matrix(context.condition.attributes)
            rows, units = partitioning.route(matrix, side)
            assert rows.size >= matrix.shape[0]
            covered = np.zeros(matrix.shape[0], dtype=bool)
            covered[rows] = True
            assert covered.all()
            assert units.min() >= 0 and units.max() < partitioning.n_units

    def test_partitioned_side_routed_to_exactly_one_unit(self, context):
        """With only T-splits in the tree, S-tuples are never duplicated."""
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        tree.apply_split(tree.root.node_id, _manual_split(0, median, side="T"))
        partitioning = tree.build_partitioning(tree.snapshot(), workers=2, method="test")
        s, _ = correlated_pair(1000, 1000, dimensions=2, z=1.5, seed=5)
        matrix = s.join_matrix(context.condition.attributes)
        rows, _ = partitioning.route(matrix, "S")
        assert rows.size == matrix.shape[0]

    def test_every_joining_pair_meets_in_exactly_one_unit(self, context):
        """Definition 1: every output pair is produced by exactly one local join."""
        tree = self._grown_tree(context, n_splits=8)
        partitioning = tree.build_partitioning(tree.snapshot(), workers=4, method="test")
        s, t = correlated_pair(600, 600, dimensions=2, z=1.5, seed=77)
        attrs = context.condition.attributes
        s_matrix, t_matrix = s.join_matrix(attrs), t.join_matrix(attrs)
        s_rows, s_units = partitioning.route(s_matrix, "S")
        t_rows, t_units = partitioning.route(t_matrix, "T")
        s_map = {}
        for row, unit in zip(s_rows, s_units):
            s_map.setdefault(int(row), set()).add(int(unit))
        t_map = {}
        for row, unit in zip(t_rows, t_units):
            t_map.setdefault(int(row), set()).add(int(unit))
        from repro.local_join.nested_loop import NestedLoopJoin

        pairs = NestedLoopJoin().join(s_matrix, t_matrix, context.condition)
        for s_idx, t_idx in pairs[:: max(1, pairs.shape[0] // 500)]:
            shared = s_map[int(s_idx)] & t_map[int(t_idx)]
            assert len(shared) == 1, f"pair ({s_idx}, {t_idx}) meets in {len(shared)} units"

    def test_snapshot_routing_ignores_later_splits(self, context):
        tree = SplitTree(context)
        median = float(np.median(context.input_sample.s_values[:, 0]))
        tree.apply_split(tree.root.node_id, _manual_split(0, median))
        early_snapshot = tree.snapshot()
        # Grow the tree further; the early snapshot must still route to 2 units.
        for leaf in list(tree.leaves()):
            decision = find_best_split(leaf, context)
            if decision is not None and decision.kind == "regular":
                tree.apply_split(leaf.node_id, decision)
        partitioning = tree.build_partitioning(early_snapshot, workers=2, method="test")
        assert partitioning.n_units == 2

    def test_empty_snapshot_rejected(self, context):
        tree = SplitTree(context)
        with pytest.raises(PartitioningError):
            tree.build_partitioning({}, workers=2, method="test")

    def test_route_validates_dimensionality(self, context):
        tree = SplitTree(context)
        partitioning = tree.build_partitioning(tree.snapshot(), workers=2, method="test")
        with pytest.raises(PartitioningError):
            partitioning.route(np.zeros((5, 3)), "S")

    def test_small_leaf_grid_routing_replicates(self, context):
        tree = SplitTree(context)
        leaf = tree.root.leaf
        leaf.grid_rows, leaf.grid_cols = 2, 3
        partitioning = tree.build_partitioning(tree.snapshot(), workers=6, method="test")
        assert partitioning.n_units == 6
        s, t = correlated_pair(200, 200, dimensions=2, seed=3)
        matrix = s.join_matrix(context.condition.attributes)
        rows_s, units_s = partitioning.route(matrix, "S")
        rows_t, units_t = partitioning.route(matrix, "T")
        # Every S-tuple goes to all 3 columns of its row; every T-tuple to all 2 rows.
        assert rows_s.size == matrix.shape[0] * 3
        assert rows_t.size == matrix.shape[0] * 2

    def test_describe_and_leaf_regions(self, context):
        tree = self._grown_tree(context, n_splits=3)
        partitioning = tree.build_partitioning(tree.snapshot(), workers=4, method="test")
        info = partitioning.describe()
        assert info["leaves"] == partitioning.n_leaves
        assert len(partitioning.leaf_regions()) == partitioning.n_leaves
        assert partitioning.estimated_unit_loads().shape[0] == partitioning.n_units
