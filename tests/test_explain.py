"""Tests for EXPLAIN / EXPLAIN ANALYZE and the cost-model calibration store.

The load-bearing properties: EXPLAIN never executes anything; EXPLAIN
ANALYZE's actual pair counts match the executed pair-set sizes exactly (for
every backend and local kernel), with finite q-errors — exactly 1.0 in the
deterministic cases (1-D inputs small enough that the selectivity probe
samples the full relations, and analyzed runs served from the result
cache); and the calibration store is a bounded, torn-line-tolerant JSONL
spool whose ``calibrate()`` refits betas once enough runs are recorded.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ServiceConfig
from repro.exceptions import CostModelError
from repro.geometry.band import BandCondition
from repro.local_join.auto import AutoJoin
from repro.obs.explain import (
    MIN_CALIBRATION_RECORDS,
    CalibrationStore,
    EstimateAccuracyTracker,
    PlanNode,
    format_plan_tree,
    qerror,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.workload.slo import SLO, SLO_KINDS, SLOMonitor
from repro.service import BandJoinService, serve_lines
from repro.service.server import handle_request


def explain_service(**overrides) -> BandJoinService:
    defaults = dict(
        backend="serial", compaction="sync", scheduler_workers=2, slo_interval=0.0
    )
    defaults.update(overrides)
    return BandJoinService(ServiceConfig(**defaults))


def register_pair(service, rng, n_s=300, n_t=300, dims=1):
    names = [f"A{i + 1}" for i in range(dims)]
    service.register("S", {a: rng.uniform(0, 1, n_s) for a in names})
    service.register("T", {a: rng.uniform(0, 1, n_t) for a in names})
    service.prepare("q", "S", "T", attributes=names, epsilons=0.05)
    return names


class TestQError:
    def test_perfect_estimate(self):
        assert qerror(10, 10) == 1.0

    def test_symmetric(self):
        assert qerror(5, 20) == qerror(20, 5) == 4.0

    def test_both_zero_agree(self):
        assert qerror(0, 0) == 1.0

    def test_one_zero_is_infinite(self):
        assert math.isinf(qerror(0, 7))
        assert math.isinf(qerror(7, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            qerror(-1, 2)

    @settings(max_examples=100, deadline=None)
    @given(
        estimate=st.floats(1e-6, 1e12),
        actual=st.floats(1e-6, 1e12),
    )
    def test_at_least_one_and_symmetric(self, estimate, actual):
        q = qerror(estimate, actual)
        assert q >= 1.0
        assert q == qerror(actual, estimate)


class TestPlanNode:
    def test_qerrors_only_for_shared_keys(self):
        node = PlanNode("n").estimate(a=10, b=5).actual(a=20)
        assert node.qerrors() == {"a": 2.0}

    def test_none_values_skipped(self):
        node = PlanNode("n").estimate(a=None, b=3).actual(b=None)
        assert node.estimates == {"b": 3.0} and node.actuals == {}

    def test_max_qerror_recurses(self):
        root = PlanNode("root").estimate(x=1).actual(x=1)
        child = root.child("child").estimate(y=2).actual(y=8)
        child.child("leaf").estimate(z=3).actual(z=9)
        assert root.max_qerror() == 4.0

    def test_max_qerror_none_without_pairs(self):
        root = PlanNode("root").estimate(x=1)
        root.child("child")
        assert root.max_qerror() is None

    def test_to_dict_serializes_inf(self):
        node = PlanNode("n").estimate(a=0).actual(a=5)
        assert node.to_dict()["qerrors"]["a"] == "inf"


class TestSelectorDecision:
    def test_tiny_regime(self):
        algorithm = AutoJoin(tiny_pairs=100)
        s = np.zeros((5, 1))
        t = np.zeros((5, 1))
        kernel, info = algorithm.decision(s, t, BandCondition.symmetric(["A1"], 0.1))
        assert kernel.name == "nested-loop"
        assert info["regime"] == "tiny"
        assert info["window_fractions"] is None
        assert info["rejected"][0]["kernel"] == "sort-sweep"

    def test_dense_regime(self, rng):
        algorithm = AutoJoin(tiny_pairs=0, dense_fraction=0.5)
        s = rng.uniform(0, 1, (200, 1))
        t = rng.uniform(0, 1, (200, 1))
        kernel, info = algorithm.decision(s, t, BandCondition.symmetric(["A1"], 10.0))
        assert kernel.name == "nested-loop"
        assert info["regime"] == "dense"
        assert info["window_fractions"][0] >= 0.5

    def test_selective_regime_picks_best_dimension(self, rng):
        algorithm = AutoJoin(tiny_pairs=0, dense_fraction=0.5)
        s = rng.uniform(0, 1, (200, 2))
        t = rng.uniform(0, 1, (200, 2))
        condition = BandCondition({"A1": (0.4, 0.4), "A2": (0.01, 0.01)})
        kernel, info = algorithm.decision(s, t, condition)
        assert kernel.name == "sort-sweep"
        assert info["regime"] == "selective"
        assert info["sweep_dimension"] == 1
        assert info["chosen"] == "sort-sweep"

    def test_select_consistent_with_decision(self, rng):
        algorithm = AutoJoin()
        s = rng.uniform(0, 1, (50, 1))
        t = rng.uniform(0, 1, (50, 1))
        condition = BandCondition.symmetric(["A1"], 0.05)
        kernel, info = algorithm.decision(s, t, condition)
        assert algorithm.select(s, t, condition).name == kernel.name == info["chosen"]


class TestSampledEstimateMemo:
    def test_estimate_pairs_samples_once(self, rng, monkeypatch):
        """Satellite fix: repeated estimate calls must not re-sample."""
        import repro.service.prepared as prepared_mod

        with explain_service() as service:
            register_pair(service, rng)
            prepared = service.prepared("q")
            calls = {"n": 0}
            real = prepared_mod._sampled_join_matrix

            def counting(*args, **kwargs):
                calls["n"] += 1
                return real(*args, **kwargs)

            monkeypatch.setattr(prepared_mod, "_sampled_join_matrix", counting)
            first = prepared.estimate_pairs()
            sampled_once = calls["n"]
            assert sampled_once == 2  # one gather per side
            assert prepared.estimate_pairs() == first
            assert prepared.sampled_estimate() == first
            assert calls["n"] == sampled_once

    def test_append_invalidates_the_memo(self, rng):
        with explain_service(staleness_threshold=10.0) as service:
            register_pair(service, rng)
            prepared = service.prepared("q")
            before = prepared.sampled_estimate()
            service.append("S", {"A1": rng.uniform(0, 1, 200)})
            after = prepared.sampled_estimate()
            # New catalog version -> new memo entry over more rows.
            assert after != pytest.approx(before)

    def test_sampled_estimate_ignores_result_cache(self, rng):
        """The planner's belief must survive the exact answer being cached."""
        with explain_service() as service:
            register_pair(service, rng)
            prepared = service.prepared("q")
            sampled = prepared.sampled_estimate()
            result = service.query("q")
            assert prepared.estimate_pairs() == float(result.n_pairs)  # exact-first
            assert prepared.sampled_estimate() == sampled


class TestExplain:
    def test_explain_does_not_execute(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            report = service.explain("q")
            assert not report.analyze and report.path is None
            assert service.prepared("q").stats.executions == 0
            assert report.root.estimates["pairs"] > 0
            assert report.root.actuals == {}

    def test_plan_cache_provenance(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            first = service.explain("q")
            second = service.explain("q")

            def plan_node(report):
                return next(c for c in report.root.children if c.name == "partitioning")

            assert plan_node(first).attrs["plan_cached"] is False
            assert plan_node(second).attrs["plan_cached"] is True

    def test_selector_node_reports_auto_decision(self, rng):
        with explain_service(local_algorithm="auto") as service:
            register_pair(service, rng)
            report = service.explain("q")
            selector = next(c for c in report.root.children if c.name == "selector")
            assert selector.attrs["algorithm"] == "auto"
            assert selector.attrs["chosen"] in ("nested-loop", "sort-sweep")
            assert selector.attrs["regime"] in ("tiny", "dense", "selective")
            assert any(c.name.startswith("rejected") for c in selector.children)
            assert "window_fractions" in selector.attrs

    def test_analyze_actual_pairs_match_execution_exactly(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            report = service.explain("q", analyze=True)
            exact = service.query("q").n_pairs
            assert report.analyze and report.path in ("cold", "plan_cache")
            assert report.root.actuals["pairs"] == float(exact)
            worst = report.max_qerror()
            assert worst is not None and math.isfinite(worst)

    def test_deterministic_1d_full_sample_has_unit_qerror(self, rng):
        """1-D inputs within the probe's sample size are estimated exactly."""
        with explain_service() as service:
            register_pair(service, rng, n_s=300, n_t=400)  # both <= 512
            report = service.explain("q", analyze=True)
            assert report.root.qerrors()["pairs"] == 1.0

    def test_analyze_of_a_cached_result_is_exact(self, rng):
        with explain_service() as service:
            register_pair(service, rng, dims=2)
            service.query("q")
            report = service.explain("q", analyze=True)
            assert report.path == "result_cache"
            assert report.root.attrs.get("served_from_cache") is True
            assert report.root.qerrors()["pairs"] == 1.0

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize(
        "algorithm", ["auto", "sort-sweep", "index-nested-loop", "nested-loop"]
    )
    def test_analyze_matches_pair_sets_across_backends_and_kernels(
        self, backend, algorithm
    ):
        """Randomized property: analyzed actuals == executed pair-set sizes."""
        for seed in (3, 11):
            rng = np.random.default_rng(seed)
            with explain_service(backend=backend, local_algorithm=algorithm) as service:
                dims = int(rng.integers(1, 3))
                register_pair(
                    service,
                    rng,
                    n_s=int(rng.integers(50, 400)),
                    n_t=int(rng.integers(50, 400)),
                    dims=dims,
                )
                eps = float(rng.uniform(0.005, 0.1))
                report = service.explain("q", epsilons=eps, analyze=True)
                expected = service.query("q", epsilons=eps).n_pairs
                assert report.root.actuals["pairs"] == float(expected)
                worst = report.max_qerror()
                assert worst is not None and math.isfinite(worst)
                if dims == 1:
                    assert report.root.qerrors()["pairs"] == 1.0

    def test_per_worker_nodes_carry_estimates_and_actuals(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            report = service.explain("q", analyze=True)
            plan = next(c for c in report.root.children if c.name == "partitioning")
            workers = [c for c in plan.children if c.name.startswith("worker")]
            assert workers
            for node in workers:
                assert "input" in node.estimates and "input" in node.actuals
                assert node.qerrors()["input"] >= 1.0

    def test_report_serialization_and_render(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            report = service.explain("q", analyze=True)
            payload = json.loads(json.dumps(report.to_dict()))
            assert payload["analyze"] is True
            assert payload["plan"]["name"] == "band_join"
            text = format_plan_tree(payload)
            assert text.startswith("EXPLAIN ANALYZE q")
            assert "partitioning" in text and "(actual" in text and "q=" in text
            assert report.render() == text


class TestCalibrationStore:
    def _record(self, i, qerr=1.0):
        return {
            "estimate": 100.0 + i,
            "actual": 100 + i,
            "qerror": qerr,
            "seconds": 0.01 + 0.001 * i,
            "betas": {"beta0": 0.0, "beta1": 1.0, "beta2": 4.0, "beta3": 1.0},
            "features": {
                "total_input": 1000 + 10 * i,
                "max_input": 200 + i,
                "max_output": 300 + 2 * i,
            },
        }

    def test_in_memory_bounding(self):
        store = CalibrationStore(max_records=5)
        for i in range(12):
            store.append(self._record(i))
        records = store.records()
        assert len(records) == 5
        assert records[-1]["estimate"] == 111.0

    def test_disk_spool_compacts(self, tmp_path):
        path = tmp_path / "calibration.jsonl"
        store = CalibrationStore(path=str(path), max_records=10)
        for i in range(25):
            store.append(self._record(i))
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) <= 2 * 10
        assert len(store.records()) == 10

    def test_reopen_recovers_records(self, tmp_path):
        path = tmp_path / "calibration.jsonl"
        CalibrationStore(path=str(path)).append(self._record(1))
        reopened = CalibrationStore(path=str(path))
        assert len(reopened) == 1
        assert reopened.records()[0]["estimate"] == 101.0

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "calibration.jsonl"
        store = CalibrationStore(path=str(path))
        store.append(self._record(1))
        with open(path, "a", encoding="utf-8") as spool:
            spool.write('{"torn": tru')  # interrupted write
        assert len(CalibrationStore(path=str(path)).records()) == 1

    def test_calibrate_needs_enough_records(self):
        store = CalibrationStore()
        for i in range(MIN_CALIBRATION_RECORDS - 1):
            store.append(self._record(i))
        with pytest.raises(CostModelError):
            store.calibrate()

    def test_calibrate_refits_on_enough_records(self, rng):
        store = CalibrationStore()
        # Synthesize observations from known betas with mild noise.
        true = (0.002, 1e-6, 4e-6, 1e-6)
        for i in range(30):
            total = float(rng.uniform(1000, 20000))
            max_in = float(rng.uniform(100, 2000))
            max_out = float(rng.uniform(100, 5000))
            seconds = (
                true[0] + true[1] * total + true[2] * max_in + true[3] * max_out
            ) * float(rng.uniform(0.95, 1.05))
            record = self._record(i, qerr=float(rng.uniform(1.0, 2.0)))
            record["features"] = {
                "total_input": total, "max_input": max_in, "max_output": max_out
            }
            record["seconds"] = seconds
            store.append(record)
        report = store.calibrate()
        assert report.n_records == 30
        assert report.after_error < 0.1
        # The recorded betas (load weights) are wildly off in seconds, so the
        # refit must remove nearly all of that drift.
        assert report.drift > 0
        assert 1.0 <= report.mean_output_qerror <= 2.0
        assert report.to_dict()["betas"]["beta2"] >= 0.0

    def test_unusable_records_do_not_count(self):
        store = CalibrationStore()
        for i in range(25):
            record = self._record(i)
            del record["features"]  # cache-path style record: no job stats
            store.append(record)
        with pytest.raises(CostModelError):
            store.calibrate()


class TestEstimateAccuracyTracker:
    def test_service_records_executed_queries_only(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            service.query("q")  # cold: executed
            assert service.calibration.observed == 1
            service.query("q")  # result cache: skipped
            assert service.calibration.observed == 1
            assert len(service.calibration_store) == 1
            record = service.calibration_store.records()[0]
            assert record["path"] == "cold"
            assert record["actual"] >= 0 and record["estimate"] >= 0
            assert "features" in record and record["features"]["total_input"] > 0

    def test_qerror_histogram_in_prometheus(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            service.query("q")
            exposition = service.prometheus()
            assert "repro_estimate_qerror" in exposition

    def test_mean_qerror_defaults_to_one(self):
        tracker = EstimateAccuracyTracker(registry=MetricsRegistry())
        assert tracker.mean_qerror() == 1.0

    def test_observe_never_raises(self):
        class Broken:
            pass

        class Result:
            path = "cold"
            n_pairs = 3
            job = None

        tracker = EstimateAccuracyTracker()
        tracker.observe(Broken(), (), Result(), 0.1)  # must swallow the error
        assert tracker.observed == 0

    def test_stats_surface_includes_calibration(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            service.query("q")
            info = service.stats()["calibration"]
            assert info["observed"] == 1
            assert info["mean_qerror"] >= 1.0


class TestEstimateQErrorSLO:
    def test_kind_registered(self):
        assert SLO_KINDS["estimate_qerror"] == "max"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(slo_max_estimate_qerror=0.5)

    def test_monitor_breaches_on_sustained_miscalibration(self):
        monitor = SLOMonitor(
            objectives=[SLO("estimate_qerror", "estimate_qerror", 2.0)],
            probes={"estimate_qerror": lambda: 5.0},
        )
        health = monitor.health()
        assert not health["healthy"]
        assert health["objectives"][0]["kind"] == "estimate_qerror"

    def test_service_objective_wiring(self, rng):
        with explain_service(slo_max_estimate_qerror=1e9) as service:
            register_pair(service, rng)
            service.query("q")
            health = service.health()
            kinds = {s["kind"] for s in health["objectives"]}
            assert "estimate_qerror" in kinds
            assert health["healthy"]


class TestProtocolAndCli:
    def test_explain_op_round_trip(self, rng):
        requests = [
            {"op": "register", "name": "S", "columns": {"A1": rng.random(200).tolist()}},
            {"op": "register", "name": "T", "columns": {"A1": rng.random(200).tolist()}},
            {"op": "prepare", "query": "q", "s": "S", "t": "T",
             "attributes": ["A1"], "epsilons": [0.05]},
            {"op": "explain", "query": "q"},
            {"op": "explain", "query": "q", "analyze": True, "epsilons": [0.02]},
            {"op": "quit"},
        ]
        out = io.StringIO()
        with explain_service() as service:
            serve_lines(service, [json.dumps(r) for r in requests], out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        plain, analyzed = responses[3]["explain"], responses[4]["explain"]
        assert plain["analyze"] is False and plain["path"] is None
        assert analyzed["analyze"] is True
        assert analyzed["path"] in ("cold", "plan_cache")
        assert analyzed["plan"]["actuals"]["pairs"] >= 0
        assert analyzed["max_qerror"] is not None

    def test_calibrate_op_before_enough_records(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            with pytest.raises(CostModelError):
                handle_request(service, {"op": "calibrate"})
            with pytest.raises(CostModelError):
                # min_records=0 clamps to the fit minimum of 3 in the store.
                handle_request(service, {"op": "calibrate", "min_records": 0})

    def test_calibrate_op_with_enough_records(self, rng):
        with explain_service() as service:
            register_pair(service, rng)
            for i in range(22):
                service.explain("q", epsilons=0.01 + 0.003 * i, analyze=True)
            response = handle_request(service, {"op": "calibrate"})
            assert response["ok"]
            assert response["calibration"]["records"] >= MIN_CALIBRATION_RECORDS
            assert set(response["calibration"]["betas"]) == {
                "beta0", "beta1", "beta2", "beta3"
            }

    def test_cli_explain_over_tcp(self, rng, capsys):
        import socket
        import threading

        from repro import cli
        from repro.service import LineProtocolServer

        with explain_service() as service:
            register_pair(service, rng)
            server = LineProtocolServer(("127.0.0.1", 0), service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                port = str(server.server_address[1])
                assert cli.main(["explain", "q", "--port", port]) == 0
                text = capsys.readouterr().out
                assert text.startswith("EXPLAIN q") and "partitioning" in text
                assert cli.main(
                    ["explain", "q", "--port", port, "--analyze", "--json"]
                ) == 0
                payload = json.loads(capsys.readouterr().out)
                assert payload["analyze"] is True
                assert payload["plan"]["actuals"]["pairs"] >= 0
                assert cli.main(
                    ["explain", "q", "--port", port, "--epsilons", "bogus"]
                ) == 2
                capsys.readouterr()
            finally:
                server.shutdown()
                server.server_close()


class TestSharedRenderer:
    def test_trace_and_plan_trees_share_the_renderer(self):
        from repro.obs.render import format_attrs, render_tree

        lines = ["header"]
        render_tree(
            {"name": "root", "children": [{"name": "leaf"}]},
            lambda node, depth: node["name"] + format_attrs({"k": 1} if depth else None),
            lines=lines,
        )
        assert lines == ["header", "root", "  - leaf  [k=1]"]

    def test_format_trace_tree_unchanged(self):
        from repro.obs import format_trace_tree

        trace = {
            "trace_id": "t1",
            "root": {
                "name": "request",
                "duration": 0.01,
                "attrs": {},
                "children": [
                    {"name": "execute", "duration": 0.005, "attrs": {"path": "cold"},
                     "children": []}
                ],
            },
        }
        text = format_trace_tree(trace)
        assert "request 10.000 ms" in text
        assert "- execute 5.000 ms (50.0%)  [path=cold]" in text
