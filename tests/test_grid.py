"""Tests for Grid-eps and Grid* (repro.baselines.grid / grid_star)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.grid import (
    GridEpsilonPartitioner,
    GridPartitioning,
    grid_cell_sizes,
    replication_counts,
)
from repro.baselines.grid_star import GridStarPartitioner, estimate_grid_statistics
from repro.config import LoadWeights
from repro.cost.model import default_running_time_model
from repro.data.generators import correlated_pair, uniform_relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.exceptions import PartitioningError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


class TestGridGeometry:
    def test_cell_sizes_follow_band_width(self):
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        np.testing.assert_allclose(grid_cell_sizes(condition, 1.0), [0.5, 0.5])
        np.testing.assert_allclose(grid_cell_sizes(condition, 4.0), [2.0, 2.0])

    def test_zero_band_width_rejected(self):
        condition = BandCondition.symmetric(["A1"], 0.0)
        with pytest.raises(PartitioningError):
            grid_cell_sizes(condition, 1.0)

    def test_invalid_multiplier(self):
        condition = BandCondition.symmetric(["A1"], 1.0)
        with pytest.raises(PartitioningError):
            grid_cell_sizes(condition, 0.0)

    def test_replication_counts_bounded_by_3_per_dimension(self, rng):
        """With cell size equal to the band width, a tuple touches at most 3 cells
        per dimension (paper Section 5.1)."""
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        t_matrix = rng.uniform(0, 10, size=(500, 2))
        counts = replication_counts(t_matrix, condition, grid_cell_sizes(condition, 1.0))
        assert counts.max() <= 9
        assert counts.min() >= 1

    def test_coarser_grid_reduces_replication(self, rng):
        condition = BandCondition.symmetric(["A1", "A2"], 0.5)
        t_matrix = rng.uniform(0, 10, size=(500, 2))
        fine = replication_counts(t_matrix, condition, grid_cell_sizes(condition, 1.0)).sum()
        coarse = replication_counts(t_matrix, condition, grid_cell_sizes(condition, 8.0)).sum()
        assert coarse < fine


class TestGridPartitioner:
    def test_partition_and_execute_correctly(self):
        s, t = correlated_pair(2000, 2000, dimensions=2, z=1.5, seed=5)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioning = GridEpsilonPartitioner().partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="pairs")

    def test_s_tuples_not_duplicated(self):
        s, t = correlated_pair(1000, 1000, dimensions=1, z=1.5, seed=6)
        condition = BandCondition.symmetric(["A1"], 0.1)
        partitioning = GridEpsilonPartitioner().partition(s, t, condition, workers=4)
        rows, _ = partitioning.route(s.join_matrix(["A1"]), "S")
        assert rows.size == len(s)

    def test_t_duplication_grows_with_dimensionality(self):
        """The paper's O(3^d) replication argument, observed empirically."""
        results = {}
        for d in (1, 2, 3):
            s, t = correlated_pair(1500, 1500, dimensions=d, z=1.5, seed=7)
            condition = BandCondition.symmetric([f"A{i+1}" for i in range(d)], 0.1)
            partitioning = GridEpsilonPartitioner().partition(s, t, condition, workers=4)
            rows, _ = partitioning.route(t.join_matrix(condition.attributes), "T")
            results[d] = rows.size / len(t)
        assert results[1] < results[2] < results[3]

    def test_max_copies_guard(self):
        s, t = correlated_pair(3000, 3000, dimensions=3, z=1.5, seed=8)
        condition = BandCondition.symmetric(["A1", "A2", "A3"], 0.1)
        partitioner = GridEpsilonPartitioner(max_copies=100)
        with pytest.raises(PartitioningError):
            partitioner.partition(s, t, condition, workers=4)

    def test_hash_assignment_mode(self):
        s, t = correlated_pair(1000, 1000, dimensions=1, z=1.5, seed=9)
        condition = BandCondition.symmetric(["A1"], 0.1)
        partitioning = GridEpsilonPartitioner(assignment="hash").partition(
            s, t, condition, workers=4
        )
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="count")

    def test_invalid_assignment_mode(self):
        with pytest.raises(PartitioningError):
            GridEpsilonPartitioner(assignment="bogus")

    def test_zero_band_width_fails_cleanly(self):
        s, t = correlated_pair(500, 500, dimensions=1, z=1.5, seed=10)
        condition = BandCondition.symmetric(["A1"], 0.0)
        with pytest.raises(PartitioningError):
            GridEpsilonPartitioner().partition(s, t, condition, workers=4)

    def test_multiplier_changes_method_name(self):
        s, t = correlated_pair(500, 500, dimensions=1, z=1.5, seed=11)
        condition = BandCondition.symmetric(["A1"], 0.5)
        partitioning = GridEpsilonPartitioner(multiplier=4.0).partition(s, t, condition, 2)
        assert "x4" in partitioning.method

    def test_route_unknown_cells_fall_back_to_hashing(self):
        """Routing data outside the optimizer-observed domain must still assign
        every tuple to some unit (coverage requirement of Definition 1)."""
        s, t = correlated_pair(500, 500, dimensions=1, z=1.5, seed=12)
        condition = BandCondition.symmetric(["A1"], 0.5)
        partitioning = GridEpsilonPartitioner().partition(s, t, condition, workers=2)
        far_away = np.array([[1e6], [2e6]])
        rows, units = partitioning.route(far_away, "S")
        assert rows.size == 2
        assert np.all((units >= 0) & (units < partitioning.n_units))


class TestGridStar:
    def test_estimate_grid_statistics_monotone_duplication(self, rng):
        s, t = correlated_pair(3000, 3000, dimensions=2, z=1.5, seed=13)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        input_sample = draw_input_sample(s, t, condition, 1000, rng)
        output_sample = draw_output_sample(s, t, condition, 200, rng)
        weights = LoadWeights()
        fine_total, _, _ = estimate_grid_statistics(
            input_sample, output_sample, condition, 1.0, 4, weights
        )
        coarse_total, _, _ = estimate_grid_statistics(
            input_sample, output_sample, condition, 8.0, 4, weights
        )
        assert coarse_total <= fine_total

    def test_grid_star_picks_coarser_grid_than_default(self):
        """On skewed Pareto data the default eps-sized grid over-duplicates, so the
        cost-model search should settle on a multiplier above 1 (paper Table 5)."""
        s, t = correlated_pair(4000, 4000, dimensions=2, z=1.5, seed=14)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        partitioner = GridStarPartitioner(cost_model=default_running_time_model())
        partitioning = partitioner.partition(s, t, condition, workers=4)
        assert partitioning.method == "Grid*"
        assert partitioning.stats.extra["chosen_multiplier"] >= 1.0
        assert partitioning.stats.iterations >= 2

    def test_grid_star_beats_default_grid_on_duplication(self):
        s, t = correlated_pair(4000, 4000, dimensions=2, z=1.5, seed=15)
        condition = BandCondition.symmetric(["A1", "A2"], 0.05)
        executor = DistributedBandJoinExecutor()
        default_grid = executor.execute(
            s, t, condition, GridEpsilonPartitioner().partition(s, t, condition, 4)
        )
        tuned = executor.execute(
            s, t, condition, GridStarPartitioner().partition(s, t, condition, 4)
        )
        assert tuned.total_input <= default_grid.total_input

    def test_grid_star_correctness(self):
        s, t = correlated_pair(2000, 2000, dimensions=2, z=1.5, seed=16)
        condition = BandCondition.symmetric(["A1", "A2"], 0.1)
        partitioning = GridStarPartitioner().partition(s, t, condition, workers=4)
        DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="count")

    def test_invalid_parameters(self):
        with pytest.raises(PartitioningError):
            GridStarPartitioner(max_multiplier=0)
        with pytest.raises(PartitioningError):
            GridStarPartitioner(patience=0)
