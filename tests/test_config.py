"""Tests for configuration objects (repro.config)."""

from __future__ import annotations

import pytest

from repro.config import LoadWeights, RecPartConfig


class TestLoadWeights:
    def test_defaults_match_paper_profile(self):
        weights = LoadWeights()
        assert weights.ratio == pytest.approx(4.0)

    def test_load_formula(self):
        weights = LoadWeights(beta_input=2.0, beta_output=0.5)
        assert weights.load(10, 4) == pytest.approx(22.0)

    def test_zero_output_weight(self):
        weights = LoadWeights(beta_input=1.0, beta_output=0.0)
        assert weights.ratio == float("inf")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LoadWeights(beta_input=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            LoadWeights(beta_input=0.0, beta_output=0.0)


class TestRecPartConfig:
    def test_defaults(self):
        config = RecPartConfig()
        assert config.symmetric is True
        assert config.termination == "applied"
        assert config.iteration_cap(8) >= 8

    def test_iteration_cap_override(self):
        config = RecPartConfig(max_iterations=17)
        assert config.iteration_cap(100) == 17

    def test_iteration_cap_scales_with_workers(self):
        config = RecPartConfig()
        assert config.iteration_cap(16) > config.iteration_cap(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecPartConfig(sample_size=0)
        with pytest.raises(ValueError):
            RecPartConfig(small_partition_factor=-1.0)
        with pytest.raises(ValueError):
            RecPartConfig(termination="other")
        with pytest.raises(ValueError):
            RecPartConfig(improvement_threshold=1.5)
