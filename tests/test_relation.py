"""Tests for the column-store Relation (repro.data.relation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.exceptions import SchemaError


@pytest.fixture
def relation() -> Relation:
    return Relation(
        "R",
        {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([10.0, 20.0, 30.0, 40.0]),
            "label": np.array([0, 1, 0, 1]),
        },
    )


class TestConstruction:
    def test_basic_properties(self, relation):
        assert len(relation) == 4
        assert relation.name == "R"
        assert relation.column_names == ("a", "b", "label")
        assert relation.num_columns == 3
        assert "a" in relation
        assert "missing" not in relation

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {"a": np.arange(3), "b": np.arange(4)})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {"a": np.zeros((2, 2))})

    def test_missing_column_access(self, relation):
        with pytest.raises(SchemaError):
            relation.column("missing")

    def test_getitem(self, relation):
        np.testing.assert_array_equal(relation["a"], [1.0, 2.0, 3.0, 4.0])


class TestProjections:
    def test_join_matrix_order_follows_request(self, relation):
        matrix = relation.join_matrix(["b", "a"])
        np.testing.assert_array_equal(matrix[:, 0], relation["b"])
        np.testing.assert_array_equal(matrix[:, 1], relation["a"])

    def test_join_matrix_missing_attribute(self, relation):
        with pytest.raises(SchemaError):
            relation.join_matrix(["a", "zzz"])

    def test_join_matrix_empty_attribute_list(self, relation):
        with pytest.raises(SchemaError):
            relation.join_matrix([])

    def test_take_preserves_schema(self, relation):
        subset = relation.take(np.array([0, 2]))
        assert len(subset) == 2
        np.testing.assert_array_equal(subset["a"], [1.0, 3.0])

    def test_head(self, relation):
        assert len(relation.head(2)) == 2
        assert len(relation.head(100)) == 4

    def test_sample_without_replacement_caps_at_size(self, relation, rng):
        assert len(relation.sample(100, rng)) == 4
        assert len(relation.sample(2, rng)) == 2

    def test_sample_with_replacement(self, relation, rng):
        sampled = relation.sample(10, rng, replace=True)
        assert len(sampled) == 10

    def test_concat(self, relation):
        combined = relation.concat(relation)
        assert len(combined) == 8

    def test_concat_schema_mismatch(self, relation):
        other = Relation("X", {"a": np.arange(2)})
        with pytest.raises(SchemaError):
            relation.concat(other)

    def test_concat_preserves_dtype(self):
        a = Relation("A", {"x": np.array([1, 2], dtype=np.int32)})
        b = Relation("B", {"x": np.array([3], dtype=np.int32)})
        assert a.concat(b)["x"].dtype == np.int32

    def test_from_rows(self):
        matrix = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        built = Relation.from_rows("R", matrix, ["a", "b"])
        assert built.column_names == ("a", "b")
        np.testing.assert_array_equal(built["a"], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(built["b"], [10.0, 20.0, 30.0])
        assert built["a"].dtype == matrix.dtype

    def test_from_rows_validates_shape(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("R", np.zeros(3), ["a"])
        with pytest.raises(SchemaError):
            Relation.from_rows("R", np.zeros((2, 3)), ["a", "b"])


class TestFingerprint:
    def test_memoized_and_stable(self, relation):
        first = relation.fingerprint(["a", "b"])
        assert relation.fingerprint(["a", "b"]) == first
        assert relation.fingerprint(("a", "b")) == first
        # The cache holds the computed value (one entry per attribute tuple).
        assert relation._fingerprints[("a", "b")] == first
        assert relation.fingerprint(["b", "a"]) != first  # order matters

    def test_equal_content_equal_fingerprint(self, relation):
        clone = Relation("other-name", relation.to_dict())
        assert clone.fingerprint(["a"]) == relation.fingerprint(["a"])

    def test_content_change_changes_fingerprint(self, relation):
        columns = relation.to_dict()
        columns["a"] = columns["a"].copy()
        columns["a"][0] += 1.0
        changed = Relation("R", columns)
        assert changed.fingerprint(["a"]) != relation.fingerprint(["a"])

    def test_standalone_function_matches_and_accepts_mappings(self, relation):
        from repro.engine.plan_cache import relation_fingerprint

        memoized = relation_fingerprint(relation, ("a", "b"))
        assert memoized == relation.fingerprint(("a", "b"))
        ad_hoc = relation_fingerprint(
            {"a": relation["a"], "b": relation["b"]}, ("a", "b")
        )
        assert ad_hoc == memoized


class TestStatistics:
    def test_bounds(self, relation):
        lower, upper = relation.bounds(["a", "b"])
        np.testing.assert_array_equal(lower, [1.0, 10.0])
        np.testing.assert_array_equal(upper, [4.0, 40.0])

    def test_describe(self, relation):
        summary = relation.describe()
        assert summary["a"]["min"] == 1.0
        assert summary["b"]["max"] == 40.0

    def test_to_dict_is_shallow_copy(self, relation):
        as_dict = relation.to_dict()
        assert set(as_dict) == {"a", "b", "label"}

    def test_rename_shares_columns(self, relation):
        renamed = relation.rename("S")
        assert renamed.name == "S"
        assert renamed["a"] is relation["a"]

    def test_repr(self, relation):
        assert "R" in repr(relation)
        assert "rows=4" in repr(relation)
