"""Tests for the column-store Relation (repro.data.relation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.exceptions import SchemaError


@pytest.fixture
def relation() -> Relation:
    return Relation(
        "R",
        {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([10.0, 20.0, 30.0, 40.0]),
            "label": np.array([0, 1, 0, 1]),
        },
    )


class TestConstruction:
    def test_basic_properties(self, relation):
        assert len(relation) == 4
        assert relation.name == "R"
        assert relation.column_names == ("a", "b", "label")
        assert relation.num_columns == 3
        assert "a" in relation
        assert "missing" not in relation

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {"a": np.arange(3), "b": np.arange(4)})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", {"a": np.zeros((2, 2))})

    def test_missing_column_access(self, relation):
        with pytest.raises(SchemaError):
            relation.column("missing")

    def test_getitem(self, relation):
        np.testing.assert_array_equal(relation["a"], [1.0, 2.0, 3.0, 4.0])


class TestProjections:
    def test_join_matrix_order_follows_request(self, relation):
        matrix = relation.join_matrix(["b", "a"])
        np.testing.assert_array_equal(matrix[:, 0], relation["b"])
        np.testing.assert_array_equal(matrix[:, 1], relation["a"])

    def test_join_matrix_missing_attribute(self, relation):
        with pytest.raises(SchemaError):
            relation.join_matrix(["a", "zzz"])

    def test_join_matrix_empty_attribute_list(self, relation):
        with pytest.raises(SchemaError):
            relation.join_matrix([])

    def test_take_preserves_schema(self, relation):
        subset = relation.take(np.array([0, 2]))
        assert len(subset) == 2
        np.testing.assert_array_equal(subset["a"], [1.0, 3.0])

    def test_head(self, relation):
        assert len(relation.head(2)) == 2
        assert len(relation.head(100)) == 4

    def test_sample_without_replacement_caps_at_size(self, relation, rng):
        assert len(relation.sample(100, rng)) == 4
        assert len(relation.sample(2, rng)) == 2

    def test_sample_with_replacement(self, relation, rng):
        sampled = relation.sample(10, rng, replace=True)
        assert len(sampled) == 10

    def test_concat(self, relation):
        combined = relation.concat(relation)
        assert len(combined) == 8

    def test_concat_schema_mismatch(self, relation):
        other = Relation("X", {"a": np.arange(2)})
        with pytest.raises(SchemaError):
            relation.concat(other)


class TestStatistics:
    def test_bounds(self, relation):
        lower, upper = relation.bounds(["a", "b"])
        np.testing.assert_array_equal(lower, [1.0, 10.0])
        np.testing.assert_array_equal(upper, [4.0, 40.0])

    def test_describe(self, relation):
        summary = relation.describe()
        assert summary["a"]["min"] == 1.0
        assert summary["b"]["max"] == 40.0

    def test_to_dict_is_shallow_copy(self, relation):
        as_dict = relation.to_dict()
        assert set(as_dict) == {"a", "b", "label"}

    def test_rename_shares_columns(self, relation):
        renamed = relation.rename("S")
        assert renamed.name == "S"
        assert renamed["a"] is relation["a"]

    def test_repr(self, relation):
        assert "R" in repr(relation)
        assert "rows=4" in repr(relation)
