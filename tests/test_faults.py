"""Fault-tolerance tests: chaos injection, crash recovery, crash-safe storage.

The invariant every test here defends: **correctness is never sacrificed
for availability**.  Whatever faults fire — worker crashes (injected or a
real SIGKILL), stragglers, torn segment writes — a query either answers
with the exact pair set the serial reference produces, or fails with a
classified error.  Degraded answers are explicitly marked stale; corrupt
segments surface as ``CorruptSegmentError``, never as wrong data.
"""

from __future__ import annotations

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.config import ServiceConfig
from repro.data.generators import correlated_pair
from repro.data.relation import Relation
from repro.data.storage import TMP_SUFFIX, MmapColumnStore, recover_spill_dir
from repro.engine import ParallelJoinEngine
from repro.engine import deadline as deadline_mod
from repro.engine.backends import (
    MAX_TASK_RETRIES,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.exceptions import (
    CorruptSegmentError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadError,
)
from repro.geometry.band import BandCondition
from repro.local_join.base import canonical_pair_order
from repro.service import BandJoinService
from repro.service.catalog import RelationCatalog
from repro.service.prepared import PATH_STALE, QueryResult
from repro.service.scheduler import QueryScheduler


@pytest.fixture(autouse=True)
def _clean_injector():
    """No test may leak an installed injector into the next."""
    yield
    faults.uninstall()


def _problem(seed: int = 7, n: int = 900, dims: int = 1):
    s, t = correlated_pair(n, n + 100, dimensions=dims, z=1.4, seed=seed)
    condition = BandCondition.symmetric([f"A{i + 1}" for i in range(dims)], 0.05)
    return s, t, condition


def _serial_pairs(s, t, condition) -> np.ndarray:
    with faults.suppressed():
        engine = ParallelJoinEngine(backend="serial")
        return canonical_pair_order(
            engine.join(s, t, condition, workers=4, materialize=True).pairs
        )


# ---------------------------------------------------------------------- #
# Injector mechanics
# ---------------------------------------------------------------------- #
class TestFaultSpec:
    def test_parse_full_spec(self):
        rates = faults.parse_fault_spec("worker_crash:0.1,task_slow:0.05,spill_torn:1")
        assert rates == {"worker_crash": 0.1, "task_slow": 0.05, "spill_torn": 1.0}

    def test_missing_rate_means_certain(self):
        assert faults.parse_fault_spec("worker_crash") == {"worker_crash": 1.0}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_fault_spec("disk_melt:0.5")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            faults.parse_fault_spec("worker_crash:1.5")

    def test_garbage_rate_rejected(self):
        with pytest.raises(ValueError, match="invalid fault rate"):
            faults.parse_fault_spec("worker_crash:often")


class TestFaultInjector:
    def test_decisions_are_deterministic_in_seed_and_key(self):
        a = faults.FaultInjector({"worker_crash": 0.5}, seed=1)
        b = faults.FaultInjector({"worker_crash": 0.5}, seed=1)
        keys = [("w", i, attempt) for i in range(64) for attempt in range(3)]
        assert [a.should_fire("worker_crash", *k) for k in keys] == [
            b.should_fire("worker_crash", *k) for k in keys
        ]
        c = faults.FaultInjector({"worker_crash": 0.5}, seed=2)
        assert [a.should_fire("worker_crash", *k) for k in keys] != [
            c.should_fire("worker_crash", *k) for k in keys
        ]

    def test_rate_extremes(self):
        injector = faults.FaultInjector({"worker_crash": 1.0})
        assert all(injector.should_fire("worker_crash", i) for i in range(16))
        assert not any(injector.should_fire("task_slow", i) for i in range(16))

    def test_rate_roughly_honored(self):
        injector = faults.FaultInjector({"worker_crash": 0.2}, seed=3)
        fired = sum(injector.should_fire("worker_crash", i) for i in range(2000))
        assert 0.12 < fired / 2000 < 0.28

    def test_suppression_masks_thread_locally(self):
        injector = faults.install(faults.FaultInjector({"worker_crash": 1.0}))
        assert faults.active() is injector
        with faults.suppressed():
            assert faults.active() is None
            seen_in_thread = []
            worker = threading.Thread(
                target=lambda: seen_in_thread.append(faults.active())
            )
            worker.start()
            worker.join()
            # Other threads are unaffected by this thread's suppression.
            assert seen_in_thread == [injector]
        assert faults.active() is injector

    def test_fire_accounts(self):
        injector = faults.FaultInjector({"spill_torn": 1.0})
        assert injector.fire("spill_torn", "d", 0)
        assert not injector.fire("worker_crash", "d", 0)
        stats = injector.stats()
        assert stats["fired"] == {"spill_torn": 1}
        assert stats["checked"] == {"spill_torn": 1, "worker_crash": 1}

    def test_maybe_slow_sleeps_when_fired(self):
        faults.install(
            faults.FaultInjector({"task_slow": 1.0}, slow_seconds=0.01)
        )
        start = time.perf_counter()
        assert faults.maybe_slow("chunk", 0)
        assert time.perf_counter() - start >= 0.01
        faults.uninstall()
        assert not faults.maybe_slow("chunk", 0)


class TestDeadline:
    def test_no_scope_is_unbounded(self):
        assert deadline_mod.remaining() is None
        deadline_mod.check()  # must not raise

    def test_scope_bounds_and_restores(self):
        with deadline_mod.deadline_scope(time.monotonic() + 5.0):
            remaining = deadline_mod.remaining()
            assert remaining is not None and 4.0 < remaining <= 5.0
            with deadline_mod.deadline_scope(time.monotonic() + 1.0):
                assert deadline_mod.remaining() <= 1.0
            assert deadline_mod.remaining() > 4.0
        assert deadline_mod.remaining() is None

    def test_nested_scope_never_loosens(self):
        with deadline_mod.deadline_scope(time.monotonic() + 0.5):
            with deadline_mod.deadline_scope(time.monotonic() + 60.0):
                assert deadline_mod.remaining() <= 0.5

    def test_check_raises_after_expiry(self):
        with deadline_mod.deadline_scope(time.monotonic() - 0.001):
            assert deadline_mod.remaining() == 0.0
            with pytest.raises(DeadlineExceededError, match="during execution"):
                deadline_mod.check()

    def test_serial_backend_honors_deadline(self):
        s, t, condition = _problem(n=400)
        faults.install(
            faults.FaultInjector({"task_slow": 1.0}, slow_seconds=0.05)
        )
        engine = ParallelJoinEngine(backend="serial")
        with deadline_mod.deadline_scope(time.monotonic() + 0.02):
            with pytest.raises(DeadlineExceededError):
                engine.join(s, t, condition, workers=4, materialize=True)


# ---------------------------------------------------------------------- #
# Backend crash recovery: identical answers under injected faults
# ---------------------------------------------------------------------- #
class TestThreadBackendRecovery:
    @pytest.mark.parametrize("rate", [0.3, 1.0])
    def test_injected_crashes_never_change_answers(self, rate):
        s, t, condition = _problem(seed=11)
        expected = _serial_pairs(s, t, condition)
        faults.install(faults.FaultInjector({"worker_crash": rate}, seed=5))
        # max_parallelism forces a real pool even on single-CPU hosts (the
        # default would quietly take the serial shortcut and test nothing).
        engine = ParallelJoinEngine(backend="threads", max_parallelism=4)
        result = engine.join(s, t, condition, workers=4, materialize=True)
        np.testing.assert_array_equal(canonical_pair_order(result.pairs), expected)

    def test_retries_are_counted(self):
        from repro.obs.globals import registry

        s, t, condition = _problem(seed=12)
        before = registry().counter("repro_task_retries_total").value(backend="threads")
        faults.install(faults.FaultInjector({"worker_crash": 1.0}, seed=6))
        ParallelJoinEngine(backend="threads", max_parallelism=4).join(
            s, t, condition, workers=4, materialize=True
        )
        after = registry().counter("repro_task_retries_total").value(backend="threads")
        assert after > before


class TestProcessBackendRecovery:
    @pytest.mark.parametrize("rate", [0.4, 1.0])
    def test_injected_process_deaths_never_change_answers(self, rate):
        """Workers really die (os._exit) — recovery retries, then falls back."""
        s, t, condition = _problem(seed=13, n=500)
        expected = _serial_pairs(s, t, condition)
        faults.install(faults.FaultInjector({"worker_crash": rate}, seed=7))
        engine = ParallelJoinEngine(backend="processes", max_parallelism=2)
        result = engine.join(s, t, condition, workers=3, materialize=True)
        np.testing.assert_array_equal(canonical_pair_order(result.pairs), expected)

    def test_sigkill_mid_join_yields_identical_pairs(self):
        """A real SIGKILL of a live pool child mid-join must only cost time."""
        s, t, condition = _problem(seed=14, n=2000)
        expected = _serial_pairs(s, t, condition)
        # Stretch every chunk so the driver reliably observes live workers.
        faults.install(
            faults.FaultInjector({"task_slow": 1.0}, slow_seconds=0.02)
        )
        backend = ProcessPoolBackend(max_workers=2)
        engine = ParallelJoinEngine(backend=backend)
        outcome: dict = {}

        def run():
            outcome["result"] = engine.join(
                s, t, condition, workers=4, materialize=True
            )

        driver = threading.Thread(target=run)
        driver.start()
        killed = False
        for _ in range(600):
            pids = backend.live_worker_pids
            if pids:
                try:
                    os.kill(pids[0], signal.SIGKILL)
                    killed = True
                    break
                except ProcessLookupError:  # worker already gone; try again
                    pass
            if not driver.is_alive():
                break
            time.sleep(0.01)
        driver.join(timeout=120)
        assert not driver.is_alive()
        assert killed, "never observed a live pool worker to kill"
        np.testing.assert_array_equal(
            canonical_pair_order(outcome["result"].pairs), expected
        )

    def test_hang_detection_recovers_via_fallback(self):
        """A stalled pool (every chunk sleeping past task_timeout) is killed
        and the dispatch completes on the in-driver fallback chain."""
        s, t, condition = _problem(seed=15, n=250)
        expected = _serial_pairs(s, t, condition)
        faults.install(
            faults.FaultInjector({"task_slow": 1.0}, slow_seconds=0.75)
        )
        backend = ProcessPoolBackend(
            max_workers=2, task_timeout=0.15, max_task_retries=0
        )
        engine = ParallelJoinEngine(backend=backend)
        result = engine.join(s, t, condition, workers=2, materialize=True)
        np.testing.assert_array_equal(canonical_pair_order(result.pairs), expected)

    def test_max_retries_bounds_crash_rounds(self):
        assert MAX_TASK_RETRIES >= 1
        with pytest.raises(Exception):
            ProcessPoolBackend(max_task_retries=-1)


# ---------------------------------------------------------------------- #
# Crash-safe storage
# ---------------------------------------------------------------------- #
def _chunks(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    yield {"A1": rng.normal(size=n), "A2": rng.normal(size=n)}
    yield {"A1": rng.normal(size=n), "A2": rng.normal(size=n)}


class TestCrashSafeStorage:
    def test_write_is_verified_and_checksummed(self, tmp_path):
        store = MmapColumnStore.write(
            str(tmp_path / "seg"), _chunks(), segment_bytes=16 * 1024
        )
        assert store.validate() > 0
        assert store.verify() > 0
        for segment in store.segments:
            assert set(segment.checksums) == {"A1", "A2"}
        assert not glob.glob(str(tmp_path / "seg" / f"*{TMP_SUFFIX}"))

    def test_truncated_segment_raises_corrupt_error(self, tmp_path):
        store = MmapColumnStore.write(
            str(tmp_path / "seg"), _chunks(), segment_bytes=16 * 1024
        )
        victim = store.segments[0].files["A1"]
        spec = store.spec()
        os.truncate(victim, os.path.getsize(victim) - 32)
        reopened = MmapColumnStore.from_spec(spec)
        with pytest.raises(CorruptSegmentError):
            reopened.validate()

    def test_bit_rot_caught_by_deep_verify(self, tmp_path):
        """A flipped payload byte keeps shape metadata intact — only the
        checksum pass can catch it, and it must never be served silently."""
        store = MmapColumnStore.write(
            str(tmp_path / "seg"), _chunks(), segment_bytes=1 << 30
        )
        victim = store.segments[0].files["A2"]
        size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.seek(size - 11)
            original = handle.read(1)
            handle.write(bytes([original[0] ^ 0xFF]))
        reopened = MmapColumnStore.from_spec(store.spec())
        reopened.validate()  # metadata still consistent
        with pytest.raises(CorruptSegmentError, match="checksum"):
            reopened.verify()

    def test_missing_file_raises_corrupt_error(self, tmp_path):
        store = MmapColumnStore.write(
            str(tmp_path / "seg"), _chunks(), segment_bytes=1 << 30
        )
        os.unlink(store.segments[0].files["A1"])
        with pytest.raises(CorruptSegmentError, match="missing"):
            MmapColumnStore.from_spec(store.spec()).validate()

    def test_torn_write_injection_fails_loudly(self, tmp_path):
        faults.install(faults.FaultInjector({"spill_torn": 1.0}))
        with pytest.raises(CorruptSegmentError):
            MmapColumnStore.write(
                str(tmp_path / "seg"), _chunks(), segment_bytes=1 << 30
            )

    def test_recover_spill_dir_sweeps_orphans(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        orphan = nested / f"seg00000__A1.npy{TMP_SUFFIX}"
        orphan.write_bytes(b"partial write")
        survivor = nested / "seg00000__A1.npy"
        survivor.write_bytes(b"complete")
        removed = recover_spill_dir(str(tmp_path))
        assert removed == [str(orphan)]
        assert not orphan.exists() and survivor.exists()

    def test_catalog_retries_torn_spills_into_fresh_dirs(self, tmp_path):
        """spill_torn at rate 1.0: two attempts fail, the suppressed final
        attempt lands — registration still succeeds, on mmap storage."""
        faults.install(faults.FaultInjector({"spill_torn": 1.0}))
        catalog = RelationCatalog(
            storage="mmap",
            spill_dir=str(tmp_path),
            spill_threshold_bytes=1,
        )
        rng = np.random.default_rng(1)
        snapshot = catalog.register("S", {"A1": rng.normal(size=500)})
        assert snapshot.storage == "mmap"
        assert snapshot.rows == 500

    def test_catalog_startup_sweeps_orphaned_tmp(self, tmp_path):
        orphan = tmp_path / f"seg00000__A1.npy{TMP_SUFFIX}"
        orphan.write_bytes(b"torn")
        RelationCatalog(storage="mmap", spill_dir=str(tmp_path))
        assert not orphan.exists()


# ---------------------------------------------------------------------- #
# Scheduler robustness: classification, deadlines, degradation, drain
# ---------------------------------------------------------------------- #
class _FailingPrepared:
    """Stub whose execution raises a chosen exception."""

    def __init__(self, exc):
        self.key = ("failing",)
        self.exc = exc
        self.attributes = ("A1",)

    def epsilon_key(self, epsilons=None):
        return ((0.1, 0.1),)

    def current_versions(self):
        return (1, 1)

    def execute(self, epsilons=None, snapshots=None):
        raise self.exc


class _BlockingPrepared:
    """Stub that blocks on a gate, with an optional stale-servable cache."""

    def __init__(self, gate, stale=None, name="blocking"):
        self.key = (name,)
        self.gate = gate
        self.stale = stale
        self.attributes = ("A1",)
        self.started = threading.Event()

    def epsilon_key(self, epsilons=None):
        value = 0.1 if epsilons is None else float(epsilons)
        return ((value, value),)

    def current_versions(self):
        return (3, 3)

    def execute(self, epsilons=None, snapshots=None):
        self.started.set()
        self.gate.wait(timeout=30)
        return QueryResult(
            pairs=np.empty((0, 2), dtype=np.int64),
            path="cold",
            s_name="S",
            t_name="T",
            s_version=3,
            t_version=3,
            seconds=0.0,
        )

    def stale_result(self, ekey):
        return self.stale

    def snapshots(self):
        return (None, None)

    def store_result(self, ekey, result):
        pass


def _stale_result():
    return QueryResult(
        pairs=np.array([[0, 1]], dtype=np.int64),
        path=PATH_STALE,
        s_name="S",
        t_name="T",
        s_version=1,
        t_version=2,
        seconds=0.0,
        stale=True,
        version_lag=3,
    )


class TestSchedulerRobustness:
    def test_failures_are_classified(self):
        cases = [
            (ValueError("boom"), "internal"),
            (CorruptSegmentError("torn"), "corrupt_segment"),
            (DeadlineExceededError("late"), "timeout"),
        ]
        with QueryScheduler(max_workers=1, max_pending=8) as scheduler:
            for i, (exc, cause) in enumerate(cases):
                stub = _FailingPrepared(exc)
                stub.key = (f"failing-{i}",)
                future = scheduler.submit(stub)
                with pytest.raises(type(exc)):
                    future.result(timeout=30)
                assert scheduler.metrics.failures.get(cause, 0) >= 1
            assert scheduler.metrics.failed == len(cases)

    def test_overload_rejections_count_as_overload_failures(self):
        gate = threading.Event()
        stub = _BlockingPrepared(gate)
        scheduler = QueryScheduler(
            max_workers=1, max_pending=1, degraded_mode="reject"
        )
        try:
            first = scheduler.submit(stub, 0.1)
            with pytest.raises(ServiceOverloadError):
                scheduler.submit(stub, 0.2)
            assert scheduler.metrics.failures.get("overload", 0) == 1
            gate.set()
            first.result(timeout=30)
        finally:
            gate.set()
            scheduler.close()

    def test_overload_serves_marked_stale_result(self):
        gate = threading.Event()
        stale = _stale_result()
        blocker = _BlockingPrepared(gate, name="hog")
        victim = _BlockingPrepared(gate, stale=stale, name="victim")
        scheduler = QueryScheduler(max_workers=1, max_pending=1)
        try:
            hog = scheduler.submit(blocker, 0.1)
            served = scheduler.submit(victim, 0.2).result(timeout=5)
            assert served.stale and served.path == PATH_STALE
            assert served.version_lag == 3
            assert scheduler.metrics.degraded == 1
            gate.set()
            hog.result(timeout=30)
        finally:
            gate.set()
            scheduler.close()

    def test_degraded_mode_reject_never_serves_stale(self):
        gate = threading.Event()
        blocker = _BlockingPrepared(gate, name="hog2")
        victim = _BlockingPrepared(gate, stale=_stale_result(), name="victim2")
        scheduler = QueryScheduler(
            max_workers=1, max_pending=1, degraded_mode="reject"
        )
        try:
            hog = scheduler.submit(blocker, 0.1)
            with pytest.raises(ServiceOverloadError):
                scheduler.submit(victim, 0.2)
            assert scheduler.metrics.degraded == 0
            gate.set()
            hog.result(timeout=30)
        finally:
            gate.set()
            scheduler.close()

    def test_no_stale_cache_still_rejects(self):
        gate = threading.Event()
        blocker = _BlockingPrepared(gate, name="hog3")
        victim = _BlockingPrepared(gate, stale=None, name="victim3")
        scheduler = QueryScheduler(max_workers=1, max_pending=1)
        try:
            hog = scheduler.submit(blocker, 0.1)
            with pytest.raises(ServiceOverloadError):
                scheduler.submit(victim, 0.2)
            gate.set()
            hog.result(timeout=30)
        finally:
            gate.set()
            scheduler.close()

    def test_deadline_expired_in_queue_fails_fast(self):
        gate = threading.Event()
        hog = _BlockingPrepared(gate, name="hog4")
        late = _BlockingPrepared(gate, name="late")
        scheduler = QueryScheduler(
            max_workers=1, max_pending=8, degraded_mode="reject"
        )
        try:
            first = scheduler.submit(hog, 0.1)
            assert hog.started.wait(timeout=30)
            future = scheduler.submit(late, 0.2, deadline=0.05)
            time.sleep(0.15)  # let the deadline lapse while queued
            gate.set()
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            first.result(timeout=30)
            assert scheduler.metrics.failures.get("timeout", 0) == 1
        finally:
            gate.set()
            scheduler.close()

    def test_invalid_deadline_rejected(self):
        with QueryScheduler(max_workers=1, max_pending=2) as scheduler:
            with pytest.raises(ServiceError, match="positive"):
                scheduler.submit(_BlockingPrepared(threading.Event()), 0.1, deadline=0)

    def test_graceful_close_drains_inflight(self):
        gate = threading.Event()
        stub = _BlockingPrepared(gate, name="draining")
        scheduler = QueryScheduler(max_workers=1, max_pending=8, drain_timeout=10.0)
        future = scheduler.submit(stub, 0.1)
        assert stub.started.wait(timeout=30)
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        time.sleep(0.05)
        gate.set()  # the in-flight request finishes during the drain window
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert future.result(timeout=1).path == "cold"

    def test_close_without_drain_fails_queued_requests(self):
        gate = threading.Event()
        hog = _BlockingPrepared(gate, name="hog5")
        queued = _BlockingPrepared(gate, name="queued")
        scheduler = QueryScheduler(max_workers=1, max_pending=8, drain_timeout=0.0)
        running = scheduler.submit(hog, 0.1)
        assert hog.started.wait(timeout=30)
        victim = scheduler.submit(queued, 0.2)
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        time.sleep(0.1)
        gate.set()
        closer.join(timeout=30)
        with pytest.raises(ServiceError, match="shut down"):
            victim.result(timeout=1)
        running.result(timeout=1)


# ---------------------------------------------------------------------- #
# End-to-end: the served fault matrix
# ---------------------------------------------------------------------- #
def _service_columns(rng, n):
    return {"A1": rng.normal(size=n)}


class TestServiceChaos:
    @pytest.mark.parametrize(
        "backend,spec",
        [
            ("threads", "worker_crash:0.5"),
            ("threads", "worker_crash:1"),
            ("threads", "worker_crash:0.3,task_slow:0.2"),
            ("processes", "worker_crash:0.5"),
        ],
    )
    def test_fault_matrix_preserves_answers(self, backend, spec, monkeypatch):
        # The service sizes pools from the host CPU count; force real pools
        # so single-CPU CI doesn't silently take the serial shortcut.
        from repro.engine import backends as backends_mod

        monkeypatch.setattr(backends_mod, "_default_parallelism", lambda: 2)
        rng = np.random.default_rng(23)
        s_cols = _service_columns(rng, 500)
        t_cols = _service_columns(rng, 550)

        with BandJoinService(
            ServiceConfig(backend="serial", compaction="sync", capture=False)
        ) as reference_service:
            reference_service.register("S", dict(s_cols))
            reference_service.register("T", dict(t_cols))
            reference_service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.05)
            expected = canonical_pair_order(reference_service.query("q").pairs)

        config = ServiceConfig(
            backend=backend,
            compaction="sync",
            capture=False,
            inject_faults=spec,
            fault_seed=99,
        )
        with BandJoinService(config) as chaotic:
            chaotic.register("S", dict(s_cols))
            chaotic.register("T", dict(t_cols))
            chaotic.prepare("q", "S", "T", attributes=["A1"], epsilons=0.05)
            result = chaotic.query("q")
            np.testing.assert_array_equal(
                canonical_pair_order(result.pairs), expected
            )
            assert not result.stale
            health = chaotic.health()
            assert health["fault_injection"]["rates"]
        assert faults.active() is None  # close() uninstalled the injector

    def test_torn_spills_under_service_still_answer(self, tmp_path):
        rng = np.random.default_rng(29)
        config = ServiceConfig(
            backend="serial",
            compaction="sync",
            capture=False,
            storage="mmap",
            spill_dir=str(tmp_path),
            spill_threshold_bytes=1,
            inject_faults="spill_torn:1",
        )
        with BandJoinService(config) as service:
            service.register("S", _service_columns(rng, 400))
            service.register("T", _service_columns(rng, 420))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.05)
            result = service.query("q")
            assert result.n_pairs > 0

    def test_health_surfaces_classified_failures(self):
        with BandJoinService(
            ServiceConfig(backend="serial", compaction="sync", capture=False)
        ) as service:
            health = service.health()
            assert "failures" in health
            assert health["degraded_responses"] == 0
