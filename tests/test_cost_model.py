"""Tests for the running-time model, calibration and lower bounds (repro.cost)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.cost.calibration import calibrate_running_time_model
from repro.cost.lower_bounds import compute_lower_bounds
from repro.cost.model import ModelCoefficients, RunningTimeModel, default_running_time_model
from repro.data.generators import correlated_pair, uniform_relation
from repro.exceptions import CostModelError
from repro.geometry.band import BandCondition
from repro.local_join.base import join_pair_count


class TestModelCoefficients:
    def test_defaults_match_paper_ratio(self):
        coefficients = ModelCoefficients()
        assert coefficients.local_cost_ratio == pytest.approx(4.0)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(CostModelError):
            ModelCoefficients(beta1=-1.0)

    def test_zero_output_weight_ratio(self):
        coefficients = ModelCoefficients(beta3=0.0)
        assert coefficients.local_cost_ratio == np.inf

    def test_as_array(self):
        arr = ModelCoefficients(1.0, 2.0, 3.0, 4.0).as_array()
        np.testing.assert_array_equal(arr, [1.0, 2.0, 3.0, 4.0])


class TestRunningTimeModel:
    def test_prediction_is_linear(self):
        model = RunningTimeModel(ModelCoefficients(beta0=1.0, beta1=2.0, beta2=3.0, beta3=4.0))
        assert model.predict(10, 5, 2) == pytest.approx(1 + 20 + 15 + 8)

    def test_negative_inputs_rejected(self):
        model = default_running_time_model()
        with pytest.raises(CostModelError):
            model.predict(-1, 0, 0)

    def test_predict_many_matches_predict(self):
        model = default_running_time_model()
        totals = np.array([10.0, 20.0])
        maxima = np.array([5.0, 6.0])
        outputs = np.array([1.0, 2.0])
        many = model.predict_many(totals, maxima, outputs)
        assert many[0] == pytest.approx(model.predict(10, 5, 1))
        assert many[1] == pytest.approx(model.predict(20, 6, 2))

    def test_local_load(self):
        model = default_running_time_model()
        assert model.local_load(10, 4) == pytest.approx(4 * 10 + 4)

    def test_fit_recovers_known_coefficients(self, rng):
        true = ModelCoefficients(beta0=0.0, beta1=0.5, beta2=2.0, beta3=0.25)
        totals = rng.uniform(100, 1000, 50)
        maxima = rng.uniform(10, 100, 50)
        outputs = rng.uniform(0, 500, 50)
        times = true.beta1 * totals + true.beta2 * maxima + true.beta3 * outputs
        model = RunningTimeModel.fit(totals, maxima, outputs, times)
        predicted = model.predict_many(totals, maxima, outputs)
        np.testing.assert_allclose(predicted, times, rtol=0.05)

    def test_fit_never_produces_negative_coefficients(self, rng):
        totals = rng.uniform(100, 1000, 20)
        maxima = rng.uniform(10, 100, 20)
        outputs = rng.uniform(0, 500, 20)
        times = rng.uniform(1, 2, 20)  # noisy, nearly constant
        model = RunningTimeModel.fit(totals, maxima, outputs, times)
        arr = model.coefficients.as_array()
        assert np.all(arr >= 0)

    def test_fit_requires_enough_observations(self):
        with pytest.raises(CostModelError):
            RunningTimeModel.fit(np.ones(2), np.ones(2), np.ones(2), np.ones(2))

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(CostModelError):
            RunningTimeModel.fit(np.ones(4), np.ones(4), np.ones(3), np.ones(4))

    def test_relative_error(self):
        model = default_running_time_model()
        assert model.relative_error(12.0, 10.0) == pytest.approx(0.2)
        with pytest.raises(CostModelError):
            model.relative_error(1.0, 0.0)

    def test_default_model_validation(self):
        with pytest.raises(CostModelError):
            default_running_time_model(beta_ratio=-1)


class TestCalibration:
    def test_calibration_produces_usable_model(self):
        result = calibrate_running_time_model(n_queries=6, base_input=800, seed=1)
        assert result.n_observations == 6
        assert result.shuffle_cost_per_tuple > 0
        model = result.model
        # More work must never be predicted to be faster.
        assert model.predict(2000, 2000, 1000) >= model.predict(1000, 1000, 100)
        # The fit should describe its own training data reasonably well.
        assert result.mean_relative_error() < 1.0

    def test_calibration_parameter_validation(self):
        with pytest.raises(CostModelError):
            calibrate_running_time_model(n_queries=2)
        with pytest.raises(CostModelError):
            calibrate_running_time_model(base_input=5)


class TestLowerBounds:
    def test_bounds_match_lemma1(self, weights):
        s, t = correlated_pair(1000, 1000, dimensions=1, z=1.5, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.01)
        workers = 4
        bounds = compute_lower_bounds(s, t, condition, workers, weights=weights)
        exact_output = join_pair_count(
            s.join_matrix(["A1"]), t.join_matrix(["A1"]), condition
        )
        assert bounds.total_input == 2000
        assert bounds.output_size == exact_output
        assert bounds.max_worker_load == pytest.approx(
            weights.load(2000, exact_output) / workers
        )

    def test_overhead_measures(self, weights):
        s = uniform_relation("S", 500, dimensions=1, seed=0)
        t = uniform_relation("T", 500, dimensions=1, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.01)
        bounds = compute_lower_bounds(s, t, condition, 2, weights=weights)
        assert bounds.input_overhead(bounds.total_input) == pytest.approx(0.0)
        assert bounds.input_overhead(bounds.total_input * 1.5) == pytest.approx(0.5)
        assert bounds.load_overhead(bounds.max_worker_load * 1.1) == pytest.approx(0.1)

    def test_explicit_output_size_skips_exact_join(self, weights):
        s, t = correlated_pair(500, 500, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.01)
        bounds = compute_lower_bounds(s, t, condition, 4, weights=weights, output_size=1234)
        assert bounds.output_size == 1234

    def test_invalid_workers(self, weights):
        s, t = correlated_pair(100, 100, dimensions=1, seed=0)
        condition = BandCondition.symmetric(["A1"], 0.01)
        with pytest.raises(CostModelError):
            compute_lower_bounds(s, t, condition, 0, weights=weights)
