"""Tests for the parallel execution engine (repro.engine).

The central property is backend equivalence: whatever backend executes the
reduce phase, the produced pair set must be exactly the serial reference's
(and therefore exactly the single-machine join, which the integration tests
pin down).  The plan cache must hit on byte-identical queries and miss as
soon as data, condition, budget or method change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.grid import GridEpsilonPartitioner
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.config import EngineConfig
from repro.core.recpart import RecPartPartitioner
from repro.data.generators import correlated_pair, uniform_relation
from repro.data.relation import Relation
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.engine import (
    ParallelJoinEngine,
    PlanCache,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    build_worker_tasks,
    condition_key,
    gather_task_inputs,
    get_backend,
    plan_key,
    relation_fingerprint,
    route_side,
    unit_offset_step,
    worker_input_counts,
)
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition
from repro.local_join.base import canonical_pair_order
from repro.local_join.index_nested_loop import IndexNestedLoopJoin

REAL_BACKENDS = ("serial", "threads", "processes")


def _small_problem(seed: int = 5, n: int = 1200, dims: int = 2):
    s, t = correlated_pair(n, n + 150, dimensions=dims, z=1.5, seed=seed)
    condition = BandCondition.symmetric([f"A{i + 1}" for i in range(dims)], 0.08)
    return s, t, condition


def _reference_pairs(s, t, condition) -> np.ndarray:
    algorithm = IndexNestedLoopJoin()
    return canonical_pair_order(
        algorithm.join(
            s.join_matrix(condition.attributes), t.join_matrix(condition.attributes), condition
        )
    )


class TestRouting:
    def test_route_side_groups_every_copy(self):
        s, t, condition = _small_problem()
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        matrix = s.join_matrix(condition.attributes)
        routed = route_side(partitioning, matrix, "S")
        rows, units = partitioning.route(matrix, "S")
        assert routed.n_copies == rows.size
        assert routed.bounds[0] == 0 and routed.bounds[-1] == rows.size
        for unit in range(partitioning.n_units):
            expected = np.sort(rows[units == unit])
            np.testing.assert_array_equal(np.sort(routed.unit_rows(unit)), expected)

    def test_worker_tasks_cover_every_unit_once(self):
        s, t, condition = _small_problem()
        partitioning = OneBucketPartitioner().partition(s, t, condition, workers=5)
        s_matrix = s.join_matrix(condition.attributes)
        t_matrix = t.join_matrix(condition.attributes)
        s_routed = route_side(partitioning, s_matrix, "S")
        t_routed = route_side(partitioning, t_matrix, "T")
        step = unit_offset_step(s_matrix, t_matrix, condition)
        tasks = build_worker_tasks(partitioning, s_routed, t_routed, step)
        assert sum(task.n_units for task in tasks) == partitioning.n_units
        assert len({task.worker_id for task in tasks}) == len(tasks)
        assert sum(task.s_rows.size for task in tasks) == s_routed.n_copies
        assert sum(task.t_rows.size for task in tasks) == t_routed.n_copies

    def test_gather_applies_unit_offsets(self):
        s, t, condition = _small_problem(n=400)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=3)
        s_matrix = s.join_matrix(condition.attributes)
        t_matrix = t.join_matrix(condition.attributes)
        s_routed = route_side(partitioning, s_matrix, "S")
        t_routed = route_side(partitioning, t_matrix, "T")
        step = unit_offset_step(s_matrix, t_matrix, condition)
        tasks = build_worker_tasks(partitioning, s_routed, t_routed, step)
        task = max(tasks, key=lambda x: x.n_units)
        worker_s, _ = gather_task_inputs(task, s_matrix, t_matrix)
        np.testing.assert_allclose(
            worker_s[:, 0], s_matrix[task.s_rows, 0] + task.s_offsets
        )
        # Gathering must not mutate the shared join matrix.
        np.testing.assert_array_equal(s_matrix, s.join_matrix(condition.attributes))

    def test_worker_input_counts_match_executor_accounting(self):
        s, t, condition = _small_problem()
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        s_routed = route_side(partitioning, s.join_matrix(condition.attributes), "S")
        counts = worker_input_counts(partitioning, s_routed)
        for stats in result.job.workers:
            assert stats.input_s == counts[stats.worker_id]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    @pytest.mark.parametrize("seed", [5, 23])
    def test_exact_pair_set_on_random_workloads(self, backend, seed):
        """Every backend produces the exact pair set of the single-machine join."""
        s, t, condition = _small_problem(seed=seed)
        partitioning = RecPartPartitioner(seed=seed).partition(s, t, condition, workers=5)
        engine = ParallelJoinEngine(backend=backend)
        result = engine.execute(s, t, condition, partitioning, materialize=True)
        np.testing.assert_array_equal(
            canonical_pair_order(result.pairs), _reference_pairs(s, t, condition)
        )

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_exact_pair_set_under_grid_partitioning(self, backend):
        s, t, condition = _small_problem(seed=9)
        partitioning = GridEpsilonPartitioner().partition(s, t, condition, workers=4)
        engine = ParallelJoinEngine(backend=backend)
        result = engine.execute(s, t, condition, partitioning, materialize=True)
        np.testing.assert_array_equal(
            canonical_pair_order(result.pairs), _reference_pairs(s, t, condition)
        )

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_counts_match_without_materialisation(self, backend):
        s, t, condition = _small_problem(seed=13)
        partitioning = OneBucketPartitioner().partition(s, t, condition, workers=6)
        engine = ParallelJoinEngine(backend=backend)
        result = engine.execute(s, t, condition, partitioning)
        assert result.pairs is None
        assert result.total_output == _reference_pairs(s, t, condition).shape[0]

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_empty_output(self, backend):
        s = uniform_relation("S", 300, dimensions=1, low=0.0, high=1.0, seed=0)
        t = uniform_relation("T", 300, dimensions=1, low=10.0, high=11.0, seed=1)
        condition = BandCondition.symmetric(["A1"], 0.05)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=3)
        result = ParallelJoinEngine(backend=backend).execute(
            s, t, condition, partitioning, materialize=True
        )
        assert result.total_output == 0
        assert result.pairs.shape == (0, 2)

    def test_engine_job_stats_match_simulated_executor(self):
        """EngineResult plugs into the same JobStats accounting as the simulator."""
        s, t, condition = _small_problem(seed=3)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        simulated = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        engine = ParallelJoinEngine(backend="serial").execute(s, t, condition, partitioning)
        assert engine.total_input == simulated.total_input
        assert engine.total_output == simulated.total_output
        assert engine.max_worker_input == simulated.max_worker_input
        assert engine.duplication_ratio == pytest.approx(simulated.duplication_ratio)
        summary = engine.summary()
        assert summary["backend"] == "serial"
        assert summary["total_output"] == simulated.total_output


class TestPlanCache:
    def test_repeated_query_hits_cache(self):
        s, t, condition = _small_problem(seed=17, n=800)
        engine = ParallelJoinEngine(backend="serial")
        first = engine.join(s, t, condition, workers=4)
        second = engine.join(s, t, condition, workers=4)
        assert not first.plan_from_cache
        assert second.plan_from_cache
        assert second.partitioning is first.partitioning
        assert second.total_output == first.total_output
        assert engine.plan_cache.stats.hits == 1
        assert engine.plan_cache.stats.misses == 1

    def test_data_change_invalidates(self):
        s, t, condition = _small_problem(seed=17, n=800)
        engine = ParallelJoinEngine(backend="serial")
        engine.join(s, t, condition, workers=4)
        columns = s.to_dict()
        columns["A1"] = columns["A1"].copy()
        columns["A1"][0] += 1e-9
        s_changed = Relation("S", columns)
        changed = engine.join(s_changed, t, condition, workers=4)
        assert not changed.plan_from_cache
        assert engine.plan_cache.stats.misses == 2

    def test_condition_and_budget_changes_invalidate(self):
        s, t, condition = _small_problem(seed=17, n=800)
        engine = ParallelJoinEngine(backend="serial")
        engine.join(s, t, condition, workers=4)
        wider = BandCondition.symmetric(condition.attributes, 0.09)
        assert not engine.join(s, t, wider, workers=4).plan_from_cache
        assert not engine.join(s, t, condition, workers=5).plan_from_cache
        # The original query is still cached.
        assert engine.join(s, t, condition, workers=4).plan_from_cache

    def test_partitioner_configuration_is_part_of_the_key(self):
        """Differently configured partitioners of the same class never share plans."""
        s, t, condition = _small_problem(seed=17, n=800)
        engine = ParallelJoinEngine(backend="serial")
        first = engine.join(s, t, condition, workers=4, partitioner=RecPartPartitioner(seed=1))
        other_seed = engine.join(
            s, t, condition, workers=4, partitioner=RecPartPartitioner(seed=2)
        )
        assert not other_seed.plan_from_cache
        # An identically configured fresh instance does share the plan.
        same = engine.join(s, t, condition, workers=4, partitioner=RecPartPartitioner(seed=1))
        assert same.plan_from_cache
        assert same.partitioning is first.partitioning

    def test_method_is_part_of_the_key(self):
        s, t, condition = _small_problem(seed=17, n=800)
        engine = ParallelJoinEngine(backend="serial")
        engine.join(s, t, condition, workers=4, partitioner=RecPartPartitioner())
        other = engine.join(s, t, condition, workers=4, partitioner=OneBucketPartitioner())
        assert not other.plan_from_cache

    def test_lru_eviction(self):
        s, t, condition = _small_problem(seed=17, n=500)
        cache = PlanCache(max_entries=2)
        engine = ParallelJoinEngine(backend="serial", plan_cache=cache)
        engine.join(s, t, condition, workers=2)
        engine.join(s, t, condition, workers=3)
        engine.join(s, t, condition, workers=4)  # evicts the workers=2 plan
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert not engine.join(s, t, condition, workers=2).plan_from_cache

    def test_fingerprint_and_keys_are_stable(self):
        s, t, condition = _small_problem(seed=17, n=300)
        attrs = condition.attributes
        assert relation_fingerprint(s, attrs) == relation_fingerprint(s, attrs)
        assert relation_fingerprint(s, attrs) != relation_fingerprint(t, attrs)
        assert condition_key(condition) == condition_key(
            BandCondition.symmetric(attrs, 0.08)
        )
        key = plan_key(s, t, condition, 4, "RecPart")
        assert key == plan_key(s, t, condition, 4, "RecPart")
        assert key != plan_key(s, t, condition, 4, "1-Bucket")

    def test_cache_validation(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_concurrent_access_is_safe(self):
        """Regression: the LRU dict is shared by scheduler threads.

        Without the internal lock, concurrent get/put on an OrderedDict
        corrupts its linked list (move_to_end during popitem) and raises.
        """
        import threading

        cache = PlanCache(max_entries=4)
        keys = [(f"k{i}",) for i in range(12)]
        errors: list[Exception] = []

        def hammer(worker_id: int) -> None:
            try:
                for i in range(400):
                    key = keys[(worker_id * 7 + i) % len(keys)]
                    if cache.get(key) is None:
                        cache.put(key, object())
                    if i % 50 == 0:
                        len(cache)
                    if i % 97 == 0:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 4
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses == 8 * 400


class TestExecutorEngineIntegration:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_executor_verifies_pairs_on_engine_backend(self, backend):
        s, t, condition = _small_problem(seed=29)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        executor = DistributedBandJoinExecutor(engine=backend)
        result = executor.execute(s, t, condition, partitioning, verify="pairs")
        assert result.backend == backend
        assert result.engine_seconds is not None and result.engine_seconds >= 0
        assert result.exact_output == result.total_output

    def test_executor_engine_accounting_matches_simulated(self):
        s, t, condition = _small_problem(seed=31)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=4)
        simulated = DistributedBandJoinExecutor().execute(s, t, condition, partitioning)
        threaded = DistributedBandJoinExecutor(engine="threads").execute(
            s, t, condition, partitioning
        )
        assert simulated.backend == "simulated"
        assert simulated.engine_seconds is None
        assert threaded.total_input == simulated.total_input
        assert threaded.total_output == simulated.total_output
        per_worker_sim = sorted(
            (w.worker_id, w.output, w.units) for w in simulated.job.workers
        )
        per_worker_eng = sorted(
            (w.worker_id, w.output, w.units) for w in threaded.job.workers
        )
        assert per_worker_sim == per_worker_eng
        assert sum(w.units for w in simulated.job.workers) == partitioning.n_units

    def test_engine_path_runs_the_cluster_algorithm(self):
        """A caller-supplied cluster's algorithm is honoured on real backends too."""

        class CountingJoin(IndexNestedLoopJoin):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def count(self, *args, **kwargs):
                self.calls += 1
                return super().count(*args, **kwargs)

        s, t, condition = _small_problem(seed=37, n=400)
        partitioning = RecPartPartitioner().partition(s, t, condition, workers=3)
        algorithm = CountingJoin()
        cluster = SimulatedCluster(3, algorithm=algorithm)
        DistributedBandJoinExecutor(engine="threads").execute(
            s, t, condition, partitioning, cluster=cluster
        )
        assert algorithm.calls > 0

    def test_executor_accepts_engine_config(self):
        executor = DistributedBandJoinExecutor(
            engine=EngineConfig(backend="threads", max_parallelism=2)
        )
        assert executor.backend_name == "threads"
        simulated = DistributedBandJoinExecutor(engine=EngineConfig())
        assert simulated.backend_name == "simulated"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError):
            DistributedBandJoinExecutor(engine="gpu")
        with pytest.raises(ExecutionError):
            get_backend("gpu")

    def test_backend_registry(self):
        assert set(REAL_BACKENDS) == set(available_backends())
        assert isinstance(get_backend("serial"), SerialBackend)
        backend = ThreadPoolBackend(max_workers=3)
        assert get_backend(backend) is backend


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.is_simulated
        assert config.plan_cache_size >= 1

    def test_engine_from_config(self):
        config = EngineConfig(backend="threads", max_parallelism=2, plan_cache_size=7)
        engine = ParallelJoinEngine.from_config(config)
        assert engine.backend.name == "threads"
        assert engine.plan_cache.max_entries == 7
        # The engine always executes for real: "simulated" maps to serial.
        assert ParallelJoinEngine.from_config(EngineConfig()).backend.name == "serial"

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="gpu")

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="threads", max_parallelism=0)

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            EngineConfig(plan_cache_size=0)


class TestKernelSelectionAndBudget:
    """Local-algorithm names and kernel memory budgets through the engine."""

    @pytest.mark.parametrize(
        "algorithm", ["index-nested-loop", "sort-sweep", "iejoin-local", "auto"]
    )
    def test_named_kernels_produce_the_reference_pair_set(self, algorithm):
        s, t, condition = _small_problem(seed=17)
        partitioning = RecPartPartitioner(seed=17).partition(s, t, condition, workers=4)
        engine = ParallelJoinEngine(backend="serial", algorithm=algorithm)
        result = engine.execute(s, t, condition, partitioning, materialize=True)
        np.testing.assert_array_equal(
            canonical_pair_order(result.pairs), _reference_pairs(s, t, condition)
        )

    def test_engine_rejects_unknown_kernel_names(self):
        with pytest.raises(ValueError):
            ParallelJoinEngine(backend="serial", algorithm="no-such-kernel")

    def test_backend_splits_memory_budget_across_pool(self):
        from repro.engine.backends import ThreadPoolBackend
        from repro.local_join import kernels
        from repro.local_join.sort_band import SortSweepJoin

        backend = ThreadPoolBackend(max_workers=4, memory_budget=4 * 1024 * 1024)
        algorithm = SortSweepJoin()
        bound = backend._budgeted(algorithm, concurrency=4)
        assert bound.memory_budget == 1024 * 1024
        assert algorithm.memory_budget == kernels.DEFAULT_MEMORY_BUDGET  # untouched

    def test_tiny_budget_does_not_change_results(self):
        s, t, condition = _small_problem(seed=21)
        partitioning = RecPartPartitioner(seed=21).partition(s, t, condition, workers=3)
        reference = _reference_pairs(s, t, condition)
        engine = ParallelJoinEngine(
            backend="serial", algorithm="sort-sweep", memory_budget=4096
        )
        result = engine.execute(s, t, condition, partitioning, materialize=True)
        np.testing.assert_array_equal(canonical_pair_order(result.pairs), reference)

    def test_engine_config_carries_kernel_settings(self):
        config = EngineConfig(
            backend="serial", local_algorithm="auto", kernel_memory_budget=1 << 20
        )
        engine = ParallelJoinEngine.from_config(config)
        assert engine.algorithm.name == "auto"
        assert engine.backend.memory_budget == 1 << 20
        executor = DistributedBandJoinExecutor(engine=config)
        assert executor.algorithm.name == "auto"

    def test_engine_config_rejects_bad_kernel_settings(self):
        with pytest.raises(ValueError):
            EngineConfig(local_algorithm="bogus")
        with pytest.raises(ValueError):
            EngineConfig(kernel_memory_budget=0)
