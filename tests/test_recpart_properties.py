"""Property-based tests of RecPart's core invariants (hypothesis).

These drive the full optimizer + executor pipeline with randomly generated
small inputs and check the invariants that must hold for *any* input:

* every input tuple reaches at least one worker,
* the distributed output equals the single-machine join exactly,
* total input never drops below |S| + |T|,
* the partitioned (non-duplicated) side is never replicated by tree splits.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RecPartConfig
from repro.core.recpart import RecPartPartitioner, RecPartSPartitioner
from repro.data.relation import Relation
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.geometry.band import BandCondition


@st.composite
def band_join_instances(draw):
    """Random small band-join instances: clustered or uniform values, 1-2 dims."""
    dims = draw(st.integers(1, 2))
    n_s = draw(st.integers(5, 120))
    n_t = draw(st.integers(5, 120))
    epsilon = draw(st.floats(0.0, 2.0))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    style = draw(st.sampled_from(["uniform", "clustered", "skewed"]))
    if style == "uniform":
        s_values = rng.uniform(0, 10, size=(n_s, dims))
        t_values = rng.uniform(0, 10, size=(n_t, dims))
    elif style == "clustered":
        centers = rng.uniform(0, 10, size=(3, dims))
        s_values = centers[rng.integers(0, 3, n_s)] + rng.normal(0, 0.5, (n_s, dims))
        t_values = centers[rng.integers(0, 3, n_t)] + rng.normal(0, 0.5, (n_t, dims))
    else:
        s_values = rng.pareto(1.5, size=(n_s, dims)) + 1.0
        t_values = rng.pareto(1.5, size=(n_t, dims)) + 1.0
    attrs = [f"A{i+1}" for i in range(dims)]
    s = Relation("S", {a: s_values[:, i] for i, a in enumerate(attrs)})
    t = Relation("T", {a: t_values[:, i] for i, a in enumerate(attrs)})
    condition = BandCondition.symmetric(attrs, epsilon)
    workers = draw(st.integers(1, 5))
    return s, t, condition, workers


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(instance=band_join_instances(), symmetric=st.booleans())
def test_recpart_produces_exact_output_on_any_input(instance, symmetric):
    s, t, condition, workers = instance
    partitioner_cls = RecPartPartitioner if symmetric else RecPartSPartitioner
    config = RecPartConfig(sample_size=256)
    partitioning = partitioner_cls(config=config).partition(s, t, condition, workers)
    result = DistributedBandJoinExecutor().execute(
        s, t, condition, partitioning, verify="pairs"
    )
    assert result.total_output == result.exact_output
    assert result.total_input >= len(s) + len(t)


@_SETTINGS
@given(instance=band_join_instances())
def test_recpart_s_never_duplicates_the_partitioned_side(instance):
    """RecPart-S only uses T-splits, so S-tuples reach exactly one leaf — its
    only possible replication comes from small-leaf 1-Bucket columns."""
    s, t, condition, workers = instance
    config = RecPartConfig(sample_size=256)
    partitioning = RecPartSPartitioner(config=config).partition(s, t, condition, workers)
    matrix = s.join_matrix(condition.attributes)
    counts = partitioning.replication_counts(matrix, "S")
    info = partitioning.describe()
    if info["small_leaves_in_grid_mode"] == 0:
        assert counts.max(initial=1) == 1
    assert counts.min(initial=1) >= 1


@_SETTINGS
@given(instance=band_join_instances())
def test_equi_join_never_duplicates(instance):
    """With all band widths zero nothing is ever within band width of a split."""
    s, t, _, workers = instance
    condition = BandCondition.symmetric(
        [f"A{i+1}" for i in range(len(s.column_names))], 0.0
    )
    config = RecPartConfig(sample_size=256)
    partitioning = RecPartPartitioner(config=config).partition(s, t, condition, workers)
    result = DistributedBandJoinExecutor().execute(s, t, condition, partitioning, verify="count")
    info = partitioning.describe()
    if info["small_leaves_in_grid_mode"] == 0:
        assert result.total_input == len(s) + len(t)
