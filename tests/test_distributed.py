"""Tests for the simulated cluster, shuffle accounting and schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.distributed.cluster import SimulatedCluster, Worker
from repro.distributed.scheduler import GreedyScheduler, HashScheduler, RoundRobinScheduler
from repro.distributed.shuffle import simulate_shuffle
from repro.distributed.stats import JobStats, WorkerStats
from repro.exceptions import ExecutionError
from repro.geometry.band import BandCondition


class TestWorker:
    def test_execute_unit_counts_output_and_time(self, rng):
        worker = Worker(worker_id=0)
        condition = BandCondition.symmetric(["A1"], 0.5)
        s = rng.uniform(0, 2, size=(50, 1))
        t = rng.uniform(0, 2, size=(60, 1))
        count = worker.execute_unit(s, t, condition)
        assert count > 0
        assert worker.stats.output == count
        assert worker.stats.local_seconds > 0
        # Input accounting is the executor's responsibility (Definition 1).
        assert worker.stats.input_s == 0

    def test_execute_unit_materialized(self, rng):
        worker = Worker(worker_id=1)
        condition = BandCondition.symmetric(["A1"], 0.5)
        s = rng.uniform(0, 2, size=(20, 1))
        t = rng.uniform(0, 2, size=(20, 1))
        pairs = worker.execute_unit(s, t, condition, materialize=True)
        assert pairs.ndim == 2 and pairs.shape[1] == 2
        assert worker.stats.output == pairs.shape[0]

    def test_reset(self, rng):
        worker = Worker(worker_id=0)
        condition = BandCondition.symmetric(["A1"], 0.5)
        worker.execute_unit(rng.uniform(size=(5, 1)), rng.uniform(size=(5, 1)), condition)
        worker.reset()
        assert worker.stats.output == 0

    def test_invalid_worker_id(self):
        with pytest.raises(ExecutionError):
            Worker(worker_id=-1)


class TestCluster:
    def test_cluster_construction(self):
        cluster = SimulatedCluster(4)
        assert cluster.n_workers == 4
        assert cluster.worker(2).worker_id == 2

    def test_invalid_size(self):
        with pytest.raises(ExecutionError):
            SimulatedCluster(0)

    def test_worker_out_of_range(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(ExecutionError):
            cluster.worker(5)

    def test_reset_clears_all_workers(self, rng):
        cluster = SimulatedCluster(2)
        condition = BandCondition.symmetric(["A1"], 0.5)
        cluster.worker(0).execute_unit(rng.uniform(size=(5, 1)), rng.uniform(size=(5, 1)), condition)
        cluster.reset()
        assert all(stats.output == 0 for stats in cluster.worker_stats())


class TestShuffle:
    def test_shuffle_counts_and_bytes(self):
        worker_ids = np.array([0, 0, 1, 2, 2, 2])
        stats = simulate_shuffle(worker_ids, n_original=5, workers=3, n_columns=4)
        np.testing.assert_array_equal(stats.tuples_per_worker, [2, 1, 3])
        assert stats.total_tuples == 6
        assert stats.replication_factor == pytest.approx(6 / 5)
        assert stats.total_bytes > 0
        assert stats.max_tuples_on_worker == 3

    def test_shuffle_validation(self):
        with pytest.raises(ExecutionError):
            simulate_shuffle(np.array([0]), 1, workers=0, n_columns=1)
        with pytest.raises(ExecutionError):
            simulate_shuffle(np.array([5]), 1, workers=2, n_columns=1)
        with pytest.raises(ExecutionError):
            simulate_shuffle(np.array([0]), -1, workers=2, n_columns=1)

    def test_empty_shuffle(self):
        stats = simulate_shuffle(np.empty(0, dtype=int), 0, workers=2, n_columns=1)
        assert stats.total_tuples == 0
        assert stats.replication_factor == 1.0


class TestSchedulers:
    def test_greedy_scheduler_balances(self, rng):
        loads = rng.uniform(1, 10, 20)
        assignment = GreedyScheduler().assign(loads, 4, rng)
        totals = np.bincount(assignment, weights=loads, minlength=4)
        assert totals.max() / totals.mean() < 1.5

    def test_hash_scheduler_range(self, rng):
        assignment = HashScheduler().assign(np.ones(50), 5, rng)
        assert assignment.min() >= 0 and assignment.max() < 5

    def test_round_robin_scheduler(self, rng):
        assignment = RoundRobinScheduler().assign(np.ones(6), 3, rng)
        assert assignment.tolist() == [0, 1, 2, 0, 1, 2]

    def test_scheduler_validation(self, rng):
        with pytest.raises(ExecutionError):
            GreedyScheduler().assign(np.array([-1.0]), 2, rng)
        with pytest.raises(ExecutionError):
            HashScheduler().assign(np.ones(3), 0, rng)


class TestJobStats:
    def _job(self) -> JobStats:
        workers = [
            WorkerStats(worker_id=0, input_s=100, input_t=100, output=50, local_seconds=0.5),
            WorkerStats(worker_id=1, input_s=300, input_t=100, output=10, local_seconds=0.2),
        ]
        return JobStats(workers=workers, total_output=60, baseline_input=500)

    def test_totals(self, weights):
        job = self._job()
        assert job.total_input == 600
        assert job.duplication == 100
        assert job.duplication_ratio == pytest.approx(0.2)
        assert job.n_workers == 2

    def test_max_worker_measures(self, weights):
        job = self._job()
        # Worker 1 has load 4*400 + 10 = 1610 > worker 0's 4*200 + 50 = 850.
        assert job.max_worker_load(weights) == pytest.approx(1610)
        assert job.max_worker_input(weights) == 400
        assert job.max_worker_output(weights) == 10

    def test_imbalance_and_times(self, weights):
        job = self._job()
        assert job.load_imbalance(weights) > 1.0
        assert job.max_local_seconds == pytest.approx(0.5)
        assert job.total_local_seconds == pytest.approx(0.7)

    def test_as_dict(self, weights):
        info = self._job().as_dict(weights)
        assert info["total_input"] == 600
        assert info["workers"] == 2

    def test_empty_job_rejected(self):
        with pytest.raises(ExecutionError):
            JobStats(workers=[], total_output=0, baseline_input=0)
