"""Tests for RecPart's termination trackers (repro.core.termination)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LoadWeights
from repro.core.partition import LeafStats, OptimizationContext
from repro.core.split import find_best_split
from repro.core.split_tree import SplitTree
from repro.core.termination import (
    CostModelTermination,
    TheoreticalTermination,
    estimate_partitioning,
)
from repro.cost.model import default_running_time_model
from repro.data.generators import correlated_pair
from repro.exceptions import OptimizationError
from repro.geometry.band import BandCondition
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


@pytest.fixture
def context(rng) -> OptimizationContext:
    s, t = correlated_pair(2000, 2000, dimensions=1, z=1.5, seed=21)
    condition = BandCondition.symmetric(["A1"], 0.05)
    return OptimizationContext(
        condition=condition,
        workers=4,
        weights=LoadWeights(),
        input_sample=draw_input_sample(s, t, condition, 1000, rng),
        output_sample=draw_output_sample(s, t, condition, 300, rng),
    )


def _grow(tree: SplitTree, steps: int) -> list[list[LeafStats]]:
    """Grow the tree greedily, returning the leaf list after every step."""
    states = [tree.leaves()]
    for _ in range(steps):
        best_leaf, best_decision = None, None
        for leaf in tree.leaves():
            decision = find_best_split(leaf, tree.ctx)
            if decision is None:
                continue
            if best_decision is None or decision.score > best_decision.score:
                best_leaf, best_decision = leaf, decision
        if best_decision is None:
            break
        tree.apply_split(best_leaf.node_id, best_decision)
        states.append(tree.leaves())
    return states


class TestEstimatePartitioning:
    def test_root_estimate_matches_totals(self, context):
        tree = SplitTree(context)
        estimate = estimate_partitioning(tree.leaves(), context)
        assert estimate.total_input == pytest.approx(context.input_sample.total_input)
        assert estimate.n_units == 1
        assert estimate.duplication_overhead == pytest.approx(0.0)
        # A single unit on one of w workers is w times the lower bound.
        assert estimate.load_overhead == pytest.approx(context.workers - 1, rel=0.05)

    def test_empty_partitioning_rejected(self, context):
        with pytest.raises(OptimizationError):
            estimate_partitioning([], context)

    def test_splitting_reduces_load_overhead(self, context):
        tree = SplitTree(context)
        before = estimate_partitioning(tree.leaves(), context)
        _grow(tree, 8)
        after = estimate_partitioning(tree.leaves(), context)
        assert after.load_overhead < before.load_overhead

    def test_duplication_monotonically_non_decreasing(self, context):
        """Paper Section 4.2: every iteration can only increase total input."""
        tree = SplitTree(context)
        states = _grow(tree, 10)
        inputs = [estimate_partitioning(state, context).total_input for state in states]
        assert all(b >= a - 1e-9 for a, b in zip(inputs, inputs[1:]))


class TestTheoreticalTermination:
    def test_tracks_best_snapshot(self, context):
        tree = SplitTree(context)
        tracker = TheoreticalTermination(context)
        tracker.record(tree.leaves(), tree.snapshot())
        _grow(tree, 6)
        tracker.record(tree.leaves(), tree.snapshot())
        assert tracker.best_snapshot is not None
        assert tracker.best_estimate is not None
        assert tracker.iterations == 2

    def test_stops_when_duplication_exceeds_best_load_overhead(self, context):
        tracker = TheoreticalTermination(context)
        tree = SplitTree(context)
        tracker.record(tree.leaves(), tree.snapshot())
        assert not tracker.should_stop()
        # Simulate a later state whose duplication overhead exceeds the best
        # load overhead recorded so far by monkey-patching the estimate inputs:
        # grow until that happens or the tree is exhausted.
        for _ in range(60):
            _grow(tree, 1)
            tracker.record(tree.leaves(), tree.snapshot())
            if tracker.should_stop():
                break
        # The tracker must never report a best objective worse than the first one.
        assert tracker.best_objective <= max(
            tracker.best_estimate.duplication_overhead, tracker.best_estimate.load_overhead
        ) + 1e-9


class TestCostModelTermination:
    def test_requires_cost_model(self, context):
        with pytest.raises(OptimizationError):
            CostModelTermination(context, cost_model=None)

    def test_invalid_window(self, context):
        with pytest.raises(OptimizationError):
            CostModelTermination(context, cost_model=default_running_time_model(), window=0)

    def test_stops_after_plateau(self, context):
        tracker = CostModelTermination(
            context, cost_model=default_running_time_model(), window=3, improvement_threshold=0.01
        )
        tree = SplitTree(context)
        # Record the same (unchanged) partitioning repeatedly: zero improvement.
        for _ in range(6):
            tracker.record(tree.leaves(), tree.snapshot())
        assert tracker.should_stop()

    def test_does_not_stop_while_improving(self, context):
        tracker = CostModelTermination(
            context, cost_model=default_running_time_model(), window=3, improvement_threshold=0.01
        )
        tree = SplitTree(context)
        tracker.record(tree.leaves(), tree.snapshot())
        stopped_early = False
        for _ in range(4):
            _grow(tree, 1)
            tracker.record(tree.leaves(), tree.snapshot())
            if tracker.should_stop():
                stopped_early = True
        # While each iteration still improves the predicted time, no stop signal.
        assert not stopped_early or tracker.iterations > 3

    def test_best_snapshot_minimises_predicted_time(self, context):
        tracker = CostModelTermination(
            context, cost_model=default_running_time_model(), window=4
        )
        tree = SplitTree(context)
        tracker.record(tree.leaves(), tree.snapshot())
        for _ in range(10):
            _grow(tree, 1)
            tracker.record(tree.leaves(), tree.snapshot())
        assert tracker.best_objective == pytest.approx(min(tracker._history))
