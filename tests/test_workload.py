"""Tests for the workload observatory (repro.obs.workload).

Covers: the capture recorder (ring bounds, drop accounting, JSONL
spooling), order-independent result fingerprints, Workload snapshots
(JSON round-trip must be lossless — drift 0 — and ring/log builds must
agree), SLO evaluation and breach plumbing, the health/workload protocol
operations, and the tentpole guarantee — a spooled capture replays
deterministically across schedulers and backends, reproducing every
result fingerprint.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.exceptions import ServiceError
from repro.obs import MetricsRegistry
from repro.obs.workload import (
    SLO,
    QueryLogRecorder,
    SLOMonitor,
    Workload,
    load_events,
    pair_fingerprint,
    replay_log,
    service_probes,
)
from repro.service import BandJoinService
from repro.service.server import handle_request


def _columns(rng: np.random.Generator, n: int, low: float = 0.0, high: float = 1.0):
    return {"A1": rng.uniform(low, high, n)}


def capture_service(tmp_path=None, **overrides) -> BandJoinService:
    """A service with synchronous compaction and (optionally) a spool log."""
    settings = {
        "compaction": "sync",
        "staleness_threshold": 10.0,
        "slo_interval": 0.0,
    }
    if tmp_path is not None:
        settings["capture_log"] = str(tmp_path / "capture.jsonl")
    settings.update(overrides)
    return BandJoinService(config=ServiceConfig(**settings))


def _drive_traffic(service: BandJoinService, rng: np.random.Generator) -> None:
    """Registrations, two prepared queries, repeats, appends — every path."""
    service.register("S", _columns(rng, 900))
    service.register("T", _columns(rng, 900))
    service.prepare("close", "S", "T", attributes=["A1"], epsilons=0.01)
    service.prepare("wide", "S", "T", attributes=["A1"], epsilons=0.03)
    service.query("close")                 # cold
    service.query("close")                 # result_cache
    service.query("wide")                  # plan differs -> cold/plan_cache
    service.query("close", epsilons=0.005)
    service.append("S", _columns(rng, 50))
    service.query("close")                 # delta
    service.query("close")                 # result_cache again


class TestPairFingerprint:
    def test_order_independent_and_duplicate_sensitive(self):
        pairs = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.int64)
        shuffled = pairs[[2, 0, 1]]
        assert pair_fingerprint(pairs) == pair_fingerprint(shuffled)
        duplicated = np.vstack([pairs, pairs[:1]])
        assert pair_fingerprint(pairs) != pair_fingerprint(duplicated)

    def test_content_sensitivity_and_empty(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.int64)
        b = np.array([[1, 2], [3, 5]], dtype=np.int64)
        c = np.array([[2, 1], [4, 3]], dtype=np.int64)  # sides swapped
        assert pair_fingerprint(a) != pair_fingerprint(b)
        assert pair_fingerprint(a) != pair_fingerprint(c)
        assert pair_fingerprint(np.empty((0, 2), dtype=np.int64)) == "0:0000000000000000"

    def test_count_prefix_matches_rows(self):
        pairs = np.array([[7, 8], [9, 10]], dtype=np.int64)
        assert pair_fingerprint(pairs).startswith("2:")


class TestQueryLogRecorder:
    def test_ring_bounds_and_drop_accounting(self):
        recorder = QueryLogRecorder(capacity=4)
        for i in range(10):
            recorder.record("query", query=f"q{i}", epsilons=[], outcome="ok",
                            s_name="S", t_name="T")
        assert len(recorder) == 4
        assert recorder.dropped == 6
        seqs = [event["seq"] for event in recorder.events()]
        assert seqs == [7, 8, 9, 10]  # oldest evicted, order preserved

    def test_spool_includes_spool_only_fields_but_ring_does_not(self, tmp_path):
        spool = tmp_path / "spool.jsonl"
        with QueryLogRecorder(capacity=8, spool_path=spool) as recorder:
            recorder.record_register("S", rows=3, version=1,
                                     columns={"A1": [1.0, 2.0, 3.0]})
        (ring_event,) = recorder.events()
        assert "columns" not in ring_event
        (line,) = spool.read_text().strip().splitlines()
        spooled = json.loads(line)
        assert spooled["columns"] == {"A1": [1.0, 2.0, 3.0]}
        assert spooled["seq"] == ring_event["seq"]

    def test_concurrent_recording_assigns_unique_seqs(self):
        recorder = QueryLogRecorder(capacity=4096)
        def hammer():
            for _ in range(200):
                recorder.record("query", query="q", epsilons=[], outcome="ok",
                                s_name="S", t_name="T")
        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [event["seq"] for event in recorder.events()]
        assert len(seqs) == 800
        assert len(set(seqs)) == 800

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryLogRecorder(capacity=0)


class TestWorkloadSnapshot:
    def test_json_round_trip_is_lossless(self, tmp_path):
        rng = np.random.default_rng(11)
        with capture_service() as service:
            _drive_traffic(service, rng)
            snapshot = service.workload_snapshot()
        restored = Workload.from_json(snapshot.to_json())
        assert restored.to_dict() == snapshot.to_dict()
        assert snapshot.drift_score(restored) == 0.0
        path = snapshot.save(tmp_path / "workload.json")
        assert Workload.load(path).to_dict() == snapshot.to_dict()

    def test_ring_and_log_builds_agree(self, tmp_path):
        rng = np.random.default_rng(12)
        with capture_service(tmp_path) as service:
            _drive_traffic(service, rng)
            from_ring = service.workload_snapshot()
            log_path = service.config.capture_log
        from_log = Workload.from_log_file(log_path)
        assert from_ring.drift_score(from_log) == 0.0
        assert from_ring.arrival_counts() == from_log.arrival_counts()

    def test_summarizes_traffic_shape(self):
        rng = np.random.default_rng(13)
        with capture_service() as service:
            _drive_traffic(service, rng)
            snapshot = service.workload_snapshot()
        assert snapshot.total_arrivals == 6
        assert snapshot.arrival_counts() == {"close": 5, "wide": 1}
        assert snapshot.hot_query_share == pytest.approx(5 / 6)
        # Epsilon mix: "close" saw 0.01 four times and 0.005 once.
        (dim0,) = snapshot.queries["close"]["epsilons"]
        assert [[0.005, 0.005], 1] in dim0 and [[0.01, 0.01], 4] in dim0
        # Table-size trajectory: S registered at 900, appended to 950.
        assert snapshot.relations["S"]["first_rows"] == 900
        assert snapshot.relations["S"]["last_rows"] == 950
        assert snapshot.relations["S"]["appends"] == 1
        # The caches absorbed repeats.
        assert snapshot.paths.get("result_cache", 0) >= 2
        assert "workload:" in snapshot.describe()

    def test_drift_detects_traffic_shifts(self):
        rng = np.random.default_rng(14)
        with capture_service() as service:
            _drive_traffic(service, rng)
            before = service.workload_snapshot()
            # Shift the mix: hammer "wide" with new epsilons and grow T.
            for _ in range(10):
                service.query("wide", epsilons=0.02)
            service.append("T", _columns(rng, 400))
            after = service.workload_snapshot()
        assert before.drift_score(before) == 0.0
        drift = before.diff(after)
        assert drift["score"] > 0.0
        assert drift["arrivals"] > 0.0
        assert drift["epsilons"] > 0.0
        assert drift["table_sizes"] > 0.0

    def test_empty_snapshot(self):
        empty = Workload.empty()
        assert empty.total_arrivals == 0
        assert empty.hot_query_share == 0.0
        assert empty.drift_score(Workload.empty()) == 0.0


class TestSLOMonitor:
    def test_breach_detection_and_history(self):
        values = {"p99_latency_seconds": 0.5}
        registry = MetricsRegistry()
        recorder = QueryLogRecorder(capacity=16)
        monitor = SLOMonitor(
            objectives=[SLO("p99", "p99_latency_seconds", 0.1)],
            probes={"p99_latency_seconds": lambda: values["p99_latency_seconds"]},
            registry=registry,
            recorder=recorder,
        )
        (status,) = monitor.evaluate()
        assert status["ok"] is False
        assert monitor.breaches_total == 1
        counter = registry.counter("repro_slo_breaches_total", "")
        assert counter.value(slo="p99", kind="p99_latency_seconds") == 1
        (event,) = recorder.events("slo_breach")
        assert event["slo"] == "p99" and event["value"] == 0.5
        values["p99_latency_seconds"] = 0.01
        (status,) = monitor.evaluate()
        assert status["ok"] is True
        assert monitor.breaches_total == 1  # no new breach

    def test_min_kind_breaches_below_threshold(self):
        monitor = SLOMonitor(
            objectives=[SLO("hits", "cache_hit_rate", 0.9)],
            probes={"cache_hit_rate": lambda: 0.5},
        )
        health = monitor.health()
        assert health["healthy"] is False
        assert health["breaches_total"] == 1
        assert health["recent_breaches"][0]["slo"] == "hits"

    def test_unknown_kind_and_missing_probe_rejected(self):
        with pytest.raises(ValueError):
            SLO("x", "nonsense_kind", 1.0)
        with pytest.raises(ValueError):
            SLOMonitor(objectives=[SLO("x", "error_rate", 0.1)], probes={})

    def test_service_probes_and_background_monitor(self):
        rng = np.random.default_rng(15)
        with capture_service(
            slo_p99_seconds=30.0,
            slo_error_rate=0.5,
            slo_cache_hit_floor=0.0,
            slo_queue_depth=1000,
            slo_interval=0.01,
        ) as service:
            _drive_traffic(service, rng)
            assert service.monitor.objectives  # config translated
            health = service.health()
            assert health["healthy"] is True
            assert health["monitoring"] is True
            probes = service_probes(service)
            assert probes["error_rate"]() == 0.0
            assert 0.0 <= probes["cache_hit_rate"]() <= 1.0
            assert probes["queue_depth"]() == 0.0
        assert service.monitor._thread is None or not service.monitor._thread.is_alive()

    def test_breaching_service_reports_unhealthy(self):
        rng = np.random.default_rng(16)
        # Impossible objective: p99 must be under a nanosecond.
        with capture_service(slo_p99_seconds=1e-9) as service:
            _drive_traffic(service, rng)
            health = service.health()
        assert health["healthy"] is False
        assert health["breaches_total"] >= 1


class TestProtocolOps:
    def test_health_and_workload_ops(self):
        rng = np.random.default_rng(17)
        with capture_service(slo_p99_seconds=30.0) as service:
            _drive_traffic(service, rng)
            health = handle_request(service, {"op": "health"})
            assert health["ok"] is True
            assert health["health"]["healthy"] is True
            workload = handle_request(service, {"op": "workload"})
            assert workload["ok"] is True
            assert workload["workload"]["total_arrivals"] == 6
            json.dumps(workload)  # must be JSON-serializable end to end

    def test_workload_op_errors_when_capture_disabled(self):
        with capture_service(capture=False) as service:
            assert service.recorder is None
            with pytest.raises(ServiceError):
                service.workload_snapshot()
            response_ok = handle_request(service, {"op": "health"})
            assert response_ok["ok"] is True  # health works without capture

    def test_stats_surface_reports_capture(self):
        rng = np.random.default_rng(18)
        with capture_service() as service:
            _drive_traffic(service, rng)
            stats = service.stats()
        assert stats["capture"]["events"] > 0
        assert stats["capture"]["capacity"] == service.config.capture_ring_size


class TestReplay:
    @pytest.mark.parametrize("replay_config", [
        {"backend": "serial", "scheduler_workers": 1},
        {"backend": "threads", "scheduler_workers": 4},
    ])
    def test_replay_reproduces_fingerprints_across_configs(self, tmp_path, replay_config):
        rng = np.random.default_rng(19)
        with capture_service(tmp_path, backend="threads") as service:
            _drive_traffic(service, rng)
            log_path = service.config.capture_log
        report = replay_log(
            log_path,
            config=ServiceConfig(capture=False, compaction="sync",
                                 staleness_threshold=10.0, **replay_config),
        )
        assert report.ok, report.describe()
        assert report.verified == 6
        assert report.registered == 2 and report.appended == 1 and report.prepared == 2
        assert not report.mismatches

    def test_replay_detects_divergence(self, tmp_path):
        rng = np.random.default_rng(20)
        with capture_service(tmp_path) as service:
            _drive_traffic(service, rng)
            log_path = service.config.capture_log
        # Corrupt one captured fingerprint: the replay must notice.
        lines = []
        tampered = False
        with open(log_path, encoding="utf-8") as spool:
            for line in spool:
                event = json.loads(line)
                if not tampered and event.get("fingerprint"):
                    event["fingerprint"] = "1:deadbeefdeadbeef"
                    tampered = True
                lines.append(json.dumps(event))
        with open(log_path, "w", encoding="utf-8") as spool:
            spool.write("\n".join(lines) + "\n")
        assert tampered
        report = replay_log(log_path)
        assert not report.ok
        assert len(report.mismatches) == 1
        assert "MISMATCH" in report.describe()

    def test_replay_requires_spooled_columns(self):
        rng = np.random.default_rng(21)
        with capture_service() as service:  # ring only, no spool
            service.register("S", _columns(rng, 50))
            events = service.recorder.events()
        from repro.obs.workload.replay import replay_events
        with capture_service(capture=False) as fresh:
            with pytest.raises(ServiceError, match="column data"):
                replay_events(events, fresh)

    def test_load_events_sorts_and_rejects_garbage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"type": "query", "seq": 2}) + "\n"
            + json.dumps({"type": "register", "seq": 1}) + "\n"
        )
        events = load_events(path)
        assert [event["seq"] for event in events] == [1, 2]
        path.write_text("not json\n")
        with pytest.raises(ServiceError, match="invalid capture line"):
            load_events(path)

    def test_dedup_and_rejection_events_are_captured(self):
        rng = np.random.default_rng(22)
        with capture_service(max_estimated_pairs=1) as service:
            service.register("S", _columns(rng, 800))
            service.register("T", _columns(rng, 800))
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.05)
            from repro.exceptions import ServiceOverloadError
            with pytest.raises(ServiceOverloadError):
                service.query("q")
            events = service.recorder.events("query")
        assert events[-1]["outcome"] == "rejected"
        assert events[-1]["reason"] == "estimated_pairs"
