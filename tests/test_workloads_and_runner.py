"""Tests for workload definitions and the experiment runner."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.recpart import RecPartSPartitioner
from repro.baselines.one_bucket import OneBucketPartitioner
from repro.exceptions import ReproError, WorkloadError
from repro.experiments import workloads as wl
from repro.experiments.runner import default_partitioners, run_workload
from repro.experiments.workloads import Workload, ebird_cloud_workload, pareto_workload, ptf_workload


class TestWorkloadDefinitions:
    def test_pareto_workload_build(self):
        workload = pareto_workload(0.1, dimensions=2, rows_per_input=500)
        s, t, condition = workload.build()
        assert len(s) == len(t) == 500
        assert condition.dimensionality == 2
        assert workload.attributes() == ("A1", "A2")

    def test_reverse_pareto_workload(self):
        workload = pareto_workload(1.0, dimensions=1, reverse=True, rows_per_input=500)
        s, t, _ = workload.build()
        assert np.median(t["A1"]) > np.median(s["A1"])

    def test_ebird_cloud_workload(self):
        workload = ebird_cloud_workload(2.0, rows_per_input=300)
        s, t, condition = workload.build()
        assert condition.attributes == ("time", "latitude", "longitude")
        assert len(s) == len(t) == 300

    def test_ptf_workload_shares_sources(self):
        workload = ptf_workload(2.78e-4, rows_per_input=1000)
        s, t, condition = workload.build()
        assert condition.attributes == ("ra", "dec")
        # The two halves observe the same sources, so some cross pairs exist
        # within a few arc seconds.
        from repro.local_join.base import join_pair_count

        count = join_pair_count(
            s.join_matrix(condition.attributes), t.join_matrix(condition.attributes), condition
        )
        assert count > 0

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                description="",
                dataset="unknown",
                dimensions=1,
                band_widths=(1.0,),
            )
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                description="",
                dataset="pareto",
                dimensions=2,
                band_widths=(1.0,),
            )
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                description="",
                dataset="pareto",
                dimensions=1,
                band_widths=(1.0,),
                workers=0,
            )

    def test_scaled_copy(self):
        workload = pareto_workload(0.1, dimensions=1)
        scaled = workload.scaled(1000, 2)
        assert scaled.rows_per_input == 1000
        assert scaled.workers == 2
        assert scaled.name != workload.name
        assert dataclasses.replace(scaled) == scaled

    def test_workload_is_deterministic(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=200)
        s1, _, _ = workload.build()
        s2, _, _ = workload.build()
        np.testing.assert_array_equal(s1["A1"], s2["A1"])

    def test_label(self):
        assert "pareto" in pareto_workload(0.1).label()


class TestTableWorkloadFamilies:
    @pytest.mark.parametrize(
        "factory",
        [
            wl.table2a_workloads,
            wl.table2b_workloads,
            wl.table2c_workloads,
            wl.table3_workloads,
            wl.table4a_workloads,
            wl.table4b_workloads,
            wl.table4c_workloads,
            wl.table4d_workloads,
            wl.table6_workloads,
            wl.table7_workloads,
            wl.table9_workloads,
            wl.table12_workloads,
            wl.table15_workloads,
            wl.table16_workloads,
            wl.figure4_workloads,
        ],
    )
    def test_factories_return_valid_workloads(self, factory):
        workloads = factory()
        assert len(workloads) >= 1
        names = [w.name for w in workloads]
        assert len(names) == len(set(names)), "workload names must be unique within a table"

    def test_table2a_band_widths_increase(self):
        widths = [w.band_widths[0] for w in wl.table2a_workloads()]
        assert widths == sorted(widths)

    def test_table3_skew_increases(self):
        skews = [w.skew for w in wl.table3_workloads()]
        assert skews == sorted(skews)

    def test_table4a_scales_input_and_workers_together(self):
        workloads = wl.table4a_workloads()
        rows = [w.rows_per_input for w in workloads]
        workers = [w.workers for w in workloads]
        assert rows == sorted(rows)
        assert workers == sorted(workers)

    def test_table5_multipliers(self):
        assert wl.table5_grid_multipliers()[0] == 1


class TestRunner:
    def test_run_workload_produces_result_per_method(self):
        workload = pareto_workload(0.1, dimensions=2, rows_per_input=800, workers=3)
        partitioners = [RecPartSPartitioner(), OneBucketPartitioner()]
        experiment = run_workload(workload, partitioners=partitioners, verify="count")
        assert len(experiment.results) == 2
        assert {r.method for r in experiment.results} == {"RecPart-S", "1-Bucket"}
        recpart = experiment.result_for("RecPart-S")
        assert not recpart.failed
        assert recpart.total_input >= 1600
        assert recpart.duplication_overhead >= 0
        assert experiment.bounds.output_size == recpart.total_output

    def test_failed_method_reported_not_raised(self):
        from repro.baselines.grid import GridEpsilonPartitioner

        workload = pareto_workload(0.0, dimensions=1, rows_per_input=400, workers=2)
        experiment = run_workload(
            workload, partitioners=[GridEpsilonPartitioner(), OneBucketPartitioner()]
        )
        grid = experiment.result_for("Grid-eps")
        assert grid.failed
        assert "band width" in (grid.error or "").lower() or "defined" in (grid.error or "")
        assert not experiment.result_for("1-Bucket").failed

    def test_best_method_selection(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=600, workers=2)
        experiment = run_workload(
            workload, partitioners=[RecPartSPartitioner(), OneBucketPartitioner()]
        )
        assert experiment.best_method().method in {"RecPart-S", "1-Bucket"}

    def test_unknown_method_lookup(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=300, workers=2)
        experiment = run_workload(workload, partitioners=[OneBucketPartitioner()])
        with pytest.raises(ReproError):
            experiment.result_for("nonexistent")

    def test_overhead_points(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=500, workers=2)
        experiment = run_workload(workload, partitioners=[OneBucketPartitioner()])
        points = experiment.overhead_points()
        assert len(points) == 1
        assert points[0].method == "1-Bucket"
        # With 2 workers the matrix is 1x2 (or 2x1): one side is shipped twice,
        # so total input is at least 1.5x the baseline.
        assert points[0].duplication_overhead >= 0.4

    def test_format_renders_all_methods(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=400, workers=2)
        experiment = run_workload(
            workload, partitioners=[RecPartSPartitioner(), OneBucketPartitioner()]
        )
        text = experiment.format()
        assert "RecPart-S" in text and "1-Bucket" in text

    def test_default_partitioners_flags(self):
        methods = {p.name for p in default_partitioners()}
        assert methods == {"RecPart-S", "CSIO", "1-Bucket", "Grid-eps"}
        extended = {p.name for p in default_partitioners(
            include_recpart_symmetric=True, include_grid_star=True, include_iejoin=True
        )}
        assert {"RecPart", "Grid*", "IEJoin"} <= extended

    def test_runner_is_deterministic(self):
        workload = pareto_workload(0.1, dimensions=1, rows_per_input=500, workers=2)
        first = run_workload(workload, partitioners=[RecPartSPartitioner()])
        second = run_workload(workload, partitioners=[RecPartSPartitioner()])
        assert first.results[0].total_input == second.results[0].total_input
        assert first.results[0].max_worker_output == second.results[0].max_worker_output
