"""Smoke tests for the per-table experiment reproductions (tiny scale).

The full-size reproductions live in ``benchmarks/``; these tests only verify
that every table function runs end-to-end at a very small scale, produces
well-formed rows, and exhibits the qualitative relationships the paper
reports (e.g. RecPart duplicates less input than 1-Bucket).
"""

from __future__ import annotations

import pytest

from repro.experiments import tables
from repro.experiments.figures import Figure4Data, Figure9Data, figure4
from repro.experiments.workloads import pareto_workload
from repro.metrics.measures import OverheadPoint

#: Scale factor applied to every workload: 50k tuples/input become 2k.
TINY = 0.04


class TestTableReproductionsSmoke:
    def test_table2b_runs_and_orders_methods(self):
        reproduction = tables.table2b(scale=TINY)
        assert len(reproduction.experiments) == 3
        text = reproduction.format()
        assert "RecPart-S" in text and "CSIO" in text
        for experiment in reproduction.experiments:
            recpart = experiment.result_for("RecPart-S")
            one_bucket = experiment.result_for("1-Bucket")
            assert not recpart.failed and not one_bucket.failed
            # The qualitative relationship of paper Table 2b: RecPart-S ships
            # far less input than 1-Bucket's ~sqrt(w) replication.
            assert recpart.total_input < one_bucket.total_input

    def test_table2a_grid_fails_on_equi_join_row(self):
        reproduction = tables.table2a(scale=TINY)
        first = reproduction.experiments[0]
        assert first.result_for("Grid-eps").failed

    def test_table3_skew_rows(self):
        reproduction = tables.table3(scale=TINY)
        assert len(reproduction.experiments) == 4

    def test_table5_grid_sweep_rows(self):
        reproduction = tables.table5(scale=TINY)
        labels = [row[0] for row in reproduction.custom_rows]
        assert any("Grid (cell = 1" in label for label in labels)
        assert "Grid*" in labels and "RecPart-S" in labels

    def test_table7_block_size_sweep(self):
        reproduction = tables.table7(scale=TINY)
        methods = {row[1] for row in reproduction.custom_rows}
        assert methods == {"RecPart-S", "IEJoin"}

    def test_table8_beta_sweep(self):
        reproduction = tables.table8(scale=TINY)
        assert len(reproduction.custom_rows) == len(
            __import__("repro.experiments.workloads", fromlist=["table8_beta_ratios"]).table8_beta_ratios()
        )

    def test_table9_symmetric_comparison(self):
        reproduction = tables.table9(scale=TINY)
        assert len(reproduction.custom_rows) >= 5
        # Every row carries both RecPart-S and RecPart measurements.
        assert all(len(row) == 12 for row in reproduction.custom_rows)

    def test_table16_theoretical_termination(self):
        reproduction = tables.table16(scale=TINY)
        for experiment in reproduction.experiments:
            assert not experiment.result_for("RecPart").failed

    def test_all_tables_registry(self):
        assert set(tables.ALL_TABLES) >= {"2a", "2b", "2c", "3", "5", "7", "9", "15", "16"}

    def test_overhead_points_collection(self):
        reproduction = tables.table2b(scale=TINY)
        points = reproduction.overhead_points()
        assert all(isinstance(p, OverheadPoint) for p in points)
        assert len(points) >= 4


class TestFigures:
    def test_figure4_points_and_summary(self):
        workloads = [
            pareto_workload(0.1, dimensions=2, rows_per_input=1500, workers=4),
            pareto_workload(0.05, dimensions=1, rows_per_input=1500, workers=4),
        ]
        data = figure4(scale=1.0, workloads=workloads)
        assert isinstance(data, Figure4Data)
        assert len(data.points) >= 8
        assert "RecPart-S" in data.methods()
        rows = data.summary_rows()
        assert len(rows) == len(data.methods())
        ascii_plot = data.render_ascii()
        assert "duplication overhead" in ascii_plot

    def test_figure4_recpart_dominates_competitors(self):
        workloads = [pareto_workload(0.1, dimensions=2, rows_per_input=2000, workers=4)]
        data = figure4(scale=1.0, workloads=workloads)
        recpart_worst = data.worst_point("RecPart-S")
        one_bucket_worst = data.worst_point("1-Bucket")
        assert recpart_worst is not None and one_bucket_worst is not None
        assert (
            recpart_worst.duplication_overhead < one_bucket_worst.duplication_overhead
        )

    def test_figure4_csv_export(self, tmp_path):
        data = Figure4Data(points=[OverheadPoint("RecPart", "w", 0.01, 0.02)])
        path = data.to_csv(tmp_path / "points.csv")
        content = path.read_text()
        assert "duplication_overhead" in content
        assert "RecPart" in content

    def test_figure4_empty_render(self):
        assert Figure4Data().render_ascii() == "(no points)"

    def test_figure9_cdf_math(self):
        data = Figure9Data(errors=[0.1, -0.3, 0.5, 0.05])
        values, fractions = data.cdf()
        assert values.shape == fractions.shape == (4,)
        assert fractions[-1] == pytest.approx(1.0)
        assert data.fraction_below(0.2) == pytest.approx(0.5)
        assert data.max_error() == pytest.approx(0.5)
        assert len(data.summary_rows()) == 4

    def test_figure9_empty(self):
        data = Figure9Data()
        values, fractions = data.cdf()
        assert values.size == 0
        assert data.fraction_below(0.5) == 0.0
        assert data.max_error() == 0.0
