"""Shared fixtures for the test suite.

All fixtures are deliberately small (a few thousand tuples at most) so the
whole suite runs in well under a minute; the full-size experiments live in
``benchmarks/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import LoadWeights  # noqa: E402
from repro.data.generators import correlated_pair, pareto_relation, uniform_relation  # noqa: E402
from repro.geometry.band import BandCondition  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def weights() -> LoadWeights:
    """The default load weights (beta2 = 4, beta3 = 1)."""
    return LoadWeights()


@pytest.fixture
def condition_1d() -> BandCondition:
    """A symmetric 1D band condition on A1."""
    return BandCondition({"A1": 0.5})


@pytest.fixture
def condition_3d() -> BandCondition:
    """A symmetric 3D band condition on A1..A3."""
    return BandCondition.symmetric(["A1", "A2", "A3"], 0.05)


@pytest.fixture
def small_pareto_pair():
    """A small 3D pareto-1.5 input pair (1500 tuples per side)."""
    return correlated_pair(1500, 1500, dimensions=3, z=1.5, seed=7)


@pytest.fixture
def small_pareto_pair_1d():
    """A small 1D pareto-1.5 input pair (2000 tuples per side)."""
    return correlated_pair(2000, 2000, dimensions=1, z=1.5, seed=11)


@pytest.fixture
def tiny_uniform_pair():
    """A tiny uniform 2D input pair (300 tuples per side) for exhaustive checks."""
    s = uniform_relation("S", 300, dimensions=2, low=0.0, high=1.0, seed=1)
    t = uniform_relation("T", 300, dimensions=2, low=0.0, high=1.0, seed=2)
    return s, t


@pytest.fixture
def skewed_relation():
    """A single heavily skewed 1D relation."""
    return pareto_relation("R", 2000, dimensions=1, z=2.0, seed=3)
