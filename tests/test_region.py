"""Tests for axis-aligned regions (repro.geometry.region)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitioningError
from repro.geometry.region import Region


class TestConstruction:
    def test_full_space_is_unbounded(self):
        region = Region.full_space(3)
        assert region.dimensionality == 3
        assert not region.is_bounded()
        assert region.volume() == np.inf

    def test_from_bounds(self):
        region = Region.from_bounds([0, 0], [1, 2])
        assert region.extent(0) == 1
        assert region.extent(1) == 2
        assert region.volume() == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(PartitioningError):
            Region.from_bounds([0.0], [0.0])

    def test_inverted_interval_rejected(self):
        with pytest.raises(PartitioningError):
            Region.from_bounds([1.0], [0.0])

    def test_mismatched_dimensionality_rejected(self):
        with pytest.raises(PartitioningError):
            Region((0.0, 0.0), (1.0,))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(PartitioningError):
            Region.full_space(0)


class TestMembership:
    def test_contains_is_half_open(self):
        region = Region.from_bounds([0.0], [1.0])
        points = np.array([[0.0], [0.5], [1.0]])
        np.testing.assert_array_equal(region.contains(points), [True, True, False])

    def test_contains_multidimensional(self):
        region = Region.from_bounds([0, 0], [1, 1])
        points = np.array([[0.5, 0.5], [0.5, 1.5], [-0.1, 0.5]])
        np.testing.assert_array_equal(region.contains(points), [True, False, False])

    def test_contains_wrong_dimensionality(self):
        region = Region.from_bounds([0, 0], [1, 1])
        with pytest.raises(PartitioningError):
            region.contains(np.zeros((2, 3)))

    def test_intersects_boxes(self):
        region = Region.from_bounds([0.0], [1.0])
        lower = np.array([[-0.5], [0.9], [1.0], [2.0]])
        upper = np.array([[-0.1], [1.5], [1.5], [3.0]])
        # Box [1.0, 1.5] touches the region boundary at 1.0, which is excluded
        # from the half-open region, so it does not intersect.
        np.testing.assert_array_equal(
            region.intersects_boxes(lower, upper), [False, True, False, False]
        )

    def test_contains_region_and_intersects_region(self):
        outer = Region.from_bounds([0, 0], [10, 10])
        inner = Region.from_bounds([1, 1], [2, 2])
        separate = Region.from_bounds([20, 20], [30, 30])
        assert outer.contains_region(inner)
        assert not inner.contains_region(outer)
        assert outer.intersects_region(inner)
        assert not outer.intersects_region(separate)


class TestSplit:
    def test_split_produces_exact_partition(self):
        region = Region.from_bounds([0.0, 0.0], [4.0, 4.0])
        left, right = region.split(0, 1.5)
        assert left.upper[0] == 1.5
        assert right.lower[0] == 1.5
        points = np.random.default_rng(0).uniform(0, 4, size=(200, 2))
        in_left = left.contains(points)
        in_right = right.contains(points)
        # Every point of the parent is in exactly one child.
        assert np.array_equal(in_left ^ in_right, region.contains(points))
        assert not np.any(in_left & in_right)

    def test_split_outside_interval_rejected(self):
        region = Region.from_bounds([0.0], [1.0])
        with pytest.raises(PartitioningError):
            region.split(0, 1.0)
        with pytest.raises(PartitioningError):
            region.split(0, -0.5)

    def test_split_bad_dimension_rejected(self):
        region = Region.from_bounds([0.0], [1.0])
        with pytest.raises(PartitioningError):
            region.split(2, 0.5)

    @settings(max_examples=40, deadline=None)
    @given(
        split=st.floats(0.01, 0.99),
        points=st.lists(st.floats(0, 1, exclude_max=True), min_size=1, max_size=30),
    )
    def test_split_never_loses_points(self, split, points):
        region = Region.from_bounds([0.0], [1.0])
        left, right = region.split(0, split)
        arr = np.array(points)[:, None]
        assert np.all(left.contains(arr) | right.contains(arr))
        assert not np.any(left.contains(arr) & right.contains(arr))


class TestSmallness:
    def test_is_small_requires_all_dimensions(self):
        region = Region.from_bounds([0, 0], [1.0, 10.0])
        eps = np.array([1.0, 1.0])
        assert not region.is_small(eps, factor=2.0)
        small = Region.from_bounds([0, 0], [1.0, 1.5])
        assert small.is_small(eps, factor=2.0)

    def test_zero_band_width_dimension_never_small(self):
        region = Region.from_bounds([0, 0], [0.5, 0.5])
        eps = np.array([0.0, 1.0])
        assert not region.is_small(eps, factor=2.0)

    def test_is_small_in_dimension(self):
        region = Region.from_bounds([0.0], [3.0])
        assert region.is_small_in_dimension(0, 2.0, factor=2.0)
        assert not region.is_small_in_dimension(0, 1.0, factor=2.0)

    def test_is_small_shape_mismatch(self):
        region = Region.from_bounds([0.0], [3.0])
        with pytest.raises(PartitioningError):
            region.is_small(np.array([1.0, 1.0]))


class TestClip:
    def test_clip_to_data_bounds(self):
        region = Region.full_space(2)
        clipped = region.clip_to(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert clipped.is_bounded()
        assert clipped.lower == (0.0, 0.0)

    def test_repr_shows_intervals(self):
        region = Region.from_bounds([0.0], [1.0])
        assert "[0," in repr(region).replace(" ", "")
