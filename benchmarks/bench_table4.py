"""Paper Table 4 (a-d): scalability experiments.

4a/4b scale input size and worker count together (3D pareto and ebird-cloud);
4c/4d use the 8-dimensional band-join to probe dimensionalities beyond what
is common today, varying input size (4c) and worker count (4d).
"""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table4a, table4b, table4c, table4d


def test_table4a_scale_input_and_workers_pareto(benchmark):
    result = benchmark.pedantic(
        lambda: table4a(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table4a", result.format())
    # Near-perfect scalability: RecPart-S's max worker input stays roughly flat
    # when input and workers grow together (within sampling noise).
    recpart = result.method_results("RecPart-S")
    assert recpart[0].max_worker_input > 0
    assert recpart[-1].max_worker_input < 4 * recpart[0].max_worker_input


def test_table4b_scale_input_and_workers_ebird(benchmark):
    result = benchmark.pedantic(
        lambda: table4b(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table4b", result.format())
    assert len(result.experiments) == 3


def test_table4c_8d_varying_input(benchmark):
    # The 8D workloads are the heaviest of the suite; run them a notch smaller.
    result = benchmark.pedantic(
        lambda: table4c(scale=bench_scale() * 0.5, verify=bench_verify()),
        rounds=1,
        iterations=1,
    )
    write_report("table4c", result.format())
    # Grid-eps must degrade (explode or fail) at d = 8 while RecPart still works.
    for experiment in result.experiments:
        recpart = experiment.result_for("RecPart")
        assert not recpart.failed
        grid = experiment.result_for("Grid-eps")
        assert grid.failed or grid.total_input > 3 * recpart.total_input


def test_table4d_8d_varying_workers(benchmark):
    result = benchmark.pedantic(
        lambda: table4d(scale=bench_scale() * 0.5, verify=bench_verify()),
        rounds=1,
        iterations=1,
    )
    write_report("table4d", result.format())
    recpart = result.method_results("RecPart")
    # More workers => the most loaded worker receives less input.
    assert recpart[-1].max_worker_input <= recpart[0].max_worker_input
