"""Paper Section 5.2 / Figure 8: row-major vs block-style ordering for CSIO.

The ordering of the multidimensional space determines how many candidate
cells the coarsened join matrix contains: row-major stripes produce a compact
diagonal, block-style (Z-order) ranges may join with many neighbouring
blocks, widening the candidate region and hence CSIO's input duplication.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_scale, write_report

from repro.baselines.csio import build_coarsened_matrix
from repro.baselines.quantiles import approximate_quantiles, ordering_key
from repro.experiments.workloads import pareto_workload
from repro.metrics.report import format_table
from repro.sampling.input_sampler import draw_input_sample
from repro.sampling.output_sampler import draw_output_sample


def _candidate_statistics(scale: float) -> list[list]:
    workload = pareto_workload(0.05, dimensions=2, rows_per_input=max(2000, int(50_000 * scale)))
    s, t, condition = workload.build()
    rng = np.random.default_rng(11)
    input_sample = draw_input_sample(s, t, condition, 4096, rng)
    output_sample = draw_output_sample(s, t, condition, 1024, rng)
    rows = []
    for ordering in ("row-major", "block"):
        keys_s = ordering_key(input_sample.s_values, ordering)
        keys_t = ordering_key(input_sample.t_values, ordering)
        granularity = 64
        s_bounds = approximate_quantiles(keys_s, granularity)
        t_bounds = approximate_quantiles(keys_t, granularity)
        matrix = build_coarsened_matrix(
            input_sample, output_sample, condition, s_bounds, t_bounds, ordering
        )
        total_cells = matrix.n_rows * matrix.n_cols
        rows.append(
            [
                ordering,
                matrix.n_rows,
                matrix.n_cols,
                matrix.n_candidate_cells,
                matrix.n_candidate_cells / total_cells,
            ]
        )
    return rows


def test_figure8_ordering_of_multidimensional_space(benchmark):
    rows = benchmark.pedantic(lambda: _candidate_statistics(bench_scale()), rounds=1, iterations=1)
    table = format_table(
        ["ordering", "S ranges", "T ranges", "candidate cells", "density"],
        rows,
        title="Figure 8: candidate-cell density under different space orderings",
    )
    write_report("figure8_ordering", table)
    row_major_density = rows[0][4]
    block_density = rows[1][4]
    # Row-major ordering must not produce a denser candidate matrix than the
    # block-style ordering (the paper's reason for selecting row-major).
    assert row_major_density <= block_density * 1.05
