"""Benchmark of the parallel execution engine backends.

Compares the ``serial``, ``threads`` and ``processes`` backends of
:mod:`repro.engine` on a Table-2-style Pareto workload: RecPart optimizes
once (every backend executes the *same* partitioning through a shared plan
cache), then each backend runs the full reduce phase and the best wall-clock
of ``repeat`` runs is recorded.

Besides the rendered table the benchmark emits a machine-readable perf
record to ``BENCH_engine.json`` at the repository root (override with
``REPRO_BENCH_ENGINE_OUT``): per-backend wall-clock, speedups vs. the
serial reference, workload shape and machine facts, plus the output-count
cross-check (every backend must produce exactly the serial count).

Run standalone for the full-size (100k tuples per input) measurement::

    PYTHONPATH=src python benchmarks/bench_engine.py

or under pytest together with the other benchmarks (scaled by
``REPRO_BENCH_SCALE``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

import repro.obs as obs  # noqa: E402
from repro.engine import ParallelJoinEngine, PlanCache  # noqa: E402
from repro.experiments.workloads import pareto_workload  # noqa: E402
from repro.metrics.report import format_table  # noqa: E402

#: Full-size benchmark shape (Table-2-style: 2-d Pareto-1.5 band join).
FULL_ROWS_PER_INPUT = 100_000
BAND_WIDTH = 0.01
DIMENSIONS = 2
SKEW = 1.5
WORKERS = 8
BACKENDS = ("serial", "threads", "processes")


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_engine_benchmark(rows_per_input: int, repeat: int = 2) -> dict:
    """Run every backend on one workload and return the perf record."""
    workload = pareto_workload(
        BAND_WIDTH,
        dimensions=DIMENSIONS,
        skew=SKEW,
        rows_per_input=rows_per_input,
        workers=WORKERS,
    )
    s, t, condition = workload.build()
    cache = PlanCache()
    # Warm-up: optimize the plan once and run the join untimed, so the first
    # measured backend is not charged for page faults, allocator growth and
    # CPU cache warm-up (without this, whichever backend runs first looks
    # ~2-3x slower than the rest).
    warmup = ParallelJoinEngine(backend="serial", plan_cache=cache).join(
        s, t, condition, workers=WORKERS
    )
    record: dict = {
        "benchmark": "engine-backends",
        "workload": {
            "name": workload.name,
            "rows_per_input": rows_per_input,
            "dimensions": DIMENSIONS,
            "band_width": BAND_WIDTH,
            "skew": SKEW,
            "workers": WORKERS,
        },
        "machine": {
            "cpus": _cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "repeat": repeat,
        "plan": {
            "method": warmup.partitioning.method,
            "optimization_seconds": warmup.optimization_seconds,
            "units": warmup.partitioning.n_units,
            "total_input": warmup.total_input,
            "duplication_ratio": warmup.duplication_ratio,
        },
        "backends": {},
    }
    serial_seconds: float | None = None
    reference_output = warmup.total_output
    for backend in BACKENDS:
        engine = ParallelJoinEngine(backend=backend, plan_cache=cache)
        best = None
        for _ in range(max(1, repeat)):
            result = engine.join(s, t, condition, workers=WORKERS)
            if best is None or result.execution_seconds < best.execution_seconds:
                best = result
        if best.total_output != reference_output:
            raise AssertionError(
                f"backend {backend!r} produced {best.total_output} pairs, "
                f"expected {reference_output}"
            )
        if serial_seconds is None:
            serial_seconds = best.execution_seconds
        record["backends"][backend] = {
            "execution_seconds": best.execution_seconds,
            "wall_seconds": best.wall_seconds,
            "routing_seconds": best.routing_seconds,
            "output": best.total_output,
            "speedup_vs_serial": (
                serial_seconds / best.execution_seconds if best.execution_seconds else 1.0
            ),
            "worker_overlap": best.speedup,
        }
    record["output"] = reference_output
    record["observability"] = measure_instrumentation_overhead(
        s, t, condition, cache, repeat=max(3, repeat)
    )
    fastest = min(record["backends"], key=lambda b: record["backends"][b]["execution_seconds"])
    record["fastest_backend"] = fastest
    record["parallel_beats_serial"] = any(
        record["backends"][b]["speedup_vs_serial"] > 1.0 for b in BACKENDS if b != "serial"
    )
    if record["machine"]["cpus"] < 2:
        record["note"] = (
            "machine exposes a single CPU: the parallel backends cannot beat the "
            "serial reference here; re-run on a multi-core machine for the speedup"
        )
    return record


def measure_instrumentation_overhead(s, t, condition, cache, repeat: int = 3) -> dict:
    """Time the serial engine with telemetry off vs. on (best of ``repeat``).

    Both runs share the warmed plan cache, so the measurement isolates the
    per-join instrumentation cost: span bookkeeping in the engine stages and
    the kernel profiling hooks.  The ISSUE budget is < 3% overhead.
    """
    was_enabled = obs.is_enabled()
    engine = ParallelJoinEngine(backend="serial", plan_cache=cache)
    timings: dict[bool, float] = {False: None, True: None}
    try:
        # Interleave off/on runs so drift in machine load (page cache, other
        # processes) hits both configurations equally, and keep the best of
        # each: best-of-N is robust against one-sided slow outliers.
        for _ in range(max(1, repeat)):
            for enabled in (False, True):
                (obs.enable if enabled else obs.disable)()
                seconds = engine.join(s, t, condition, workers=WORKERS).execution_seconds
                if timings[enabled] is None or seconds < timings[enabled]:
                    timings[enabled] = seconds
    finally:
        (obs.enable if was_enabled else obs.disable)()
        obs.tracer().clear()
    disabled, enabled = timings[False], timings[True]
    return {
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": (enabled - disabled) / disabled if disabled else 0.0,
    }


def render(record: dict) -> str:
    """Render the perf record as an aligned table."""
    rows = [
        [
            backend,
            facts["output"],
            facts["routing_seconds"],
            facts["execution_seconds"],
            facts["speedup_vs_serial"],
            facts["worker_overlap"],
        ]
        for backend, facts in record["backends"].items()
    ]
    title = (
        f"engine backends on {record['workload']['name']} "
        f"(|S|=|T|={record['workload']['rows_per_input']:,}, w={WORKERS}, "
        f"{record['machine']['cpus']} CPUs, fastest: {record['fastest_backend']})"
    )
    table = format_table(
        ["backend", "output", "route [s]", "exec [s]", "vs serial", "overlap"], rows, title=title
    )
    overhead = record.get("observability")
    if overhead:
        table += (
            f"\ntelemetry overhead (serial): off={overhead['disabled_seconds']:.4f}s "
            f"on={overhead['enabled_seconds']:.4f}s "
            f"({overhead['overhead_fraction'] * 100:+.2f}%)"
        )
    return table


def record_path() -> Path:
    """Return the output path of the JSON perf record."""
    override = os.environ.get("REPRO_BENCH_ENGINE_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def write_record(record: dict) -> Path:
    """Write the JSON perf record and return its path."""
    path = record_path()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def test_engine_backend_comparison():
    """All backends agree on the output; the record lands in BENCH_engine.json."""
    from conftest import bench_scale, write_report

    rows = max(10_000, int(FULL_ROWS_PER_INPUT * bench_scale()))
    record = run_engine_benchmark(rows)
    outputs = {facts["output"] for facts in record["backends"].values()}
    assert outputs == {record["output"]}
    path = write_record(record)
    write_report("engine_backends", render(record) + f"\n[record written to {path}]")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else FULL_ROWS_PER_INPUT
    perf_record = run_engine_benchmark(rows)
    print(render(perf_record))
    print(f"\n[record written to {write_record(perf_record)}]")
