"""Empirical demonstrations of the paper's Lemmas 2 and 3 at benchmark scale.

Lemma 2: a dense epsilon-range forces a proportionally heavy grid cell, no
matter how fine the grid — grid partitioning cannot balance away point skew.
Lemma 3: for self-similar inputs with bounded output, the fraction of input
in any epsilon-range shrinks like 1/sqrt(input size), which is why automatic
grid tuning (Grid*) works on the correlated Pareto workloads.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_scale, write_report

from repro.baselines.grid import GridEpsilonPartitioner
from repro.data.generators import pareto_relation
from repro.data.relation import Relation
from repro.geometry.band import BandCondition
from repro.metrics.report import format_table


def _lemma2_rows(scale: float) -> list[list]:
    rng = np.random.default_rng(5)
    n = max(5000, int(50_000 * scale))
    epsilon = 1.0
    dense = rng.uniform(500.0, 500.0 + epsilon, n // 10)
    t = Relation("T", {"A1": np.concatenate([dense, rng.uniform(0, 1000.0, n)])})
    s = Relation("S", {"A1": rng.uniform(0, 1000.0, n)})
    condition = BandCondition.symmetric(["A1"], epsilon)
    rows = []
    for multiplier in (1.0, 2.0, 4.0, 8.0, 16.0):
        partitioning = GridEpsilonPartitioner(multiplier=multiplier).partition(
            s, t, condition, workers=8
        )
        _, units = partitioning.route(t.join_matrix(["A1"]), "T")
        heaviest = int(np.bincount(units, minlength=partitioning.n_units).max())
        rows.append([multiplier, partitioning.n_units, heaviest, heaviest >= dense.size])
    return rows


def _lemma3_rows(scale: float) -> list[list]:
    # Lemma 3 requires the output to stay bounded by a constant times the
    # input; shrinking the band width as the input grows (a constant expected
    # number of matches per tuple) keeps that precondition satisfied.
    rows = []
    for n in (int(10_000 * scale) + 1000, int(40_000 * scale) + 2000, int(160_000 * scale) + 4000):
        epsilon = 25.0 / n
        relation = pareto_relation("R", n, dimensions=1, z=1.5, seed=7)
        values = np.sort(relation["A1"])
        window_end = np.searchsorted(values, values + epsilon, side="right")
        densest = int((window_end - np.arange(n)).max())
        rows.append([n, densest, densest / n, 1.0 / np.sqrt(n)])
    return rows


def test_lemma2_grid_density_floor(benchmark):
    rows = benchmark.pedantic(lambda: _lemma2_rows(bench_scale()), rounds=1, iterations=1)
    table = format_table(
        ["grid multiplier", "cells", "max T-tuples in a cell", ">= dense cluster"],
        rows,
        title="Lemma 2: the densest epsilon-range lower-bounds every grid cell",
    )
    write_report("lemma2", table)
    assert all(row[3] for row in rows)


def test_lemma3_epsilon_range_fraction(benchmark):
    rows = benchmark.pedantic(lambda: _lemma3_rows(bench_scale()), rounds=1, iterations=1)
    table = format_table(
        ["input size", "densest eps-range", "fraction", "1/sqrt(n) reference"],
        rows,
        title="Lemma 3: max eps-range input fraction shrinks with input size",
    )
    write_report("lemma3", table)
    fractions = [row[2] for row in rows]
    assert fractions[-1] < fractions[0]
