"""End-to-end EXPLAIN / EXPLAIN ANALYZE smoke check.

Drives the whole introspection surface in-process:

* EXPLAIN without execution — the plan tree carries partitioning,
  per-worker and cost-model estimates, plan-cache provenance, and the
  AutoJoin selector decision with its rejected alternatives, and the
  prepared query's execution counter stays untouched,
* EXPLAIN ANALYZE — every estimate node gains actuals with finite
  q-errors and the analyzed root pair count equals the executed result,
* calibration — after 20+ analyzed runs ``calibrate()`` refits the
  running-time betas and the next EXPLAIN prices the plan in seconds,
* hot-path cost — the estimate-accuracy tracker is toggled on every other
  cached-path request and the interleaved medians must agree within the
  1% ISSUE budget.

Writes the analyzed report to ``EXPLAIN_sample.json`` so CI can upload it
as an artifact, and merges an ``explain`` block (overhead + calibration
figures) into ``BENCH_service.json`` at the repository root (override with
``REPRO_BENCH_SERVICE_OUT``).  Exits non-zero on any violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_explain.py
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_SRC = ROOT / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

SAMPLE_PATH = ROOT / "EXPLAIN_sample.json"

ROWS = 4000
DIMENSIONS = 2
EPSILONS = (0.004, 0.006, 0.008, 0.010, 0.012, 0.014)
ANALYZED_RUNS = 24
OVERHEAD_BURST = 500
OVERHEAD_REPEAT = 9
OVERHEAD_BUDGET = 0.01


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def measure_tracker_overhead(service, repeat: int = OVERHEAD_REPEAT) -> dict:
    """Median cached-path latency with the accuracy tracker off vs on.

    Same interleaved-median protocol as the capture-overhead measurement in
    ``bench_service.py``: the tracker is toggled on every other request so
    both configurations see identical machine load, and the median discards
    scheduler-jitter outliers.  On the cached path the tracker's whole job
    is one "not an executed path" check, so this bounds the cost EXPLAIN
    support adds to requests that never asked for it.
    """
    tracker = service.scheduler.calibration
    latencies: dict[bool, list[float]] = {False: [], True: []}
    try:
        for i in range(2 * OVERHEAD_BURST * max(1, repeat)):
            enabled = bool(i & 1)
            eps = EPSILONS[(i // 2) % len(EPSILONS)]
            service.scheduler.calibration = tracker if enabled else None
            start = time.perf_counter()
            service.query("bench", eps)
            latencies[enabled].append(time.perf_counter() - start)
    finally:
        service.scheduler.calibration = tracker
    disabled = sorted(latencies[False])[len(latencies[False]) // 2]
    enabled = sorted(latencies[True])[len(latencies[True]) // 2]
    return {
        "requests_per_config": OVERHEAD_BURST * max(1, repeat),
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": (enabled - disabled) / disabled if disabled else 0.0,
    }


def bench_record_path() -> Path:
    override = os.environ.get("REPRO_BENCH_SERVICE_OUT")
    if override:
        return Path(override)
    return ROOT / "BENCH_service.json"


def merge_bench_block(block: dict) -> Path:
    """Merge the explain block into BENCH_service.json, keeping other keys."""
    path = bench_record_path()
    record: dict = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except ValueError:
            record = {}
    record["explain"] = block
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def main() -> int:
    import numpy as np

    from repro.config import ServiceConfig
    from repro.data.generators import correlated_pair
    from repro.service import BandJoinService

    s, t = correlated_pair(ROWS, ROWS, dimensions=DIMENSIONS, z=1.5, seed=0)
    attributes = [f"A{i + 1}" for i in range(DIMENSIONS)]
    # local_algorithm="auto" so the selector node carries a real decision
    # (the service default is a fixed kernel, reported as fixed=True).
    config = ServiceConfig(
        backend="threads", workers=4, scheduler_workers=4, local_algorithm="auto"
    )

    with BandJoinService(config) as service:
        service.register("S", s)
        service.register("T", t)
        prepared = service.prepare(
            "bench", "S", "T", attributes=attributes, epsilons=EPSILONS[0]
        )

        # ---- EXPLAIN: full plan tree, nothing executed ----------------- #
        plain = service.explain("bench").to_dict()
        check(plain["analyze"] is False and plain["path"] is None,
              "plain EXPLAIN must not carry an execution path")
        check(prepared.stats.executions == 0, "EXPLAIN executed the query")
        children = {c["name"] for c in plain["plan"]["children"]}
        for expected in ("partitioning", "selector", "cost_model"):
            check(expected in children, f"plan tree lost its {expected} node")
        partitioning = next(
            c for c in plain["plan"]["children"] if c["name"] == "partitioning"
        )
        check(partitioning["attrs"]["plan_cached"] is False,
              "first EXPLAIN reported a cached plan")
        check(any(c["name"].startswith("worker") for c in partitioning["children"]),
              "partitioning node lost its per-worker estimates")
        selector = next(c for c in plain["plan"]["children"] if c["name"] == "selector")
        check("chosen" in selector["attrs"], "selector decision missing")
        check(any(c["name"].startswith("rejected") for c in selector["children"]),
              "selector rejected-alternatives missing")
        check(service.explain("bench").to_dict()["plan"]["children"][0]["attrs"][
            "plan_cached"] is True, "second EXPLAIN missed the plan cache")

        # ---- EXPLAIN ANALYZE: actuals and q-errors --------------------- #
        analyzed = service.explain("bench", analyze=True)
        exact = service.query("bench").n_pairs
        check(analyzed.root.actuals["pairs"] == float(exact),
              "analyzed pair count does not match the executed result")
        worst = analyzed.max_qerror()
        check(worst is not None and math.isfinite(worst),
              f"analyzed q-error not finite: {worst}")
        rendered = analyzed.render()
        check("(actual" in rendered and "q=" in rendered,
              "rendered tree lost its actual/q-error annotations")
        check("repro_estimate_qerror" in service.prometheus(),
              "repro_estimate_qerror missing from the Prometheus exposition")
        print(rendered)

        # ---- calibration: 20+ analyzed runs refit the betas ------------ #
        for i in range(ANALYZED_RUNS):
            eps = 0.004 + 0.0005 * i
            service.explain("bench", epsilons=eps, analyze=True)
        report = service.calibrate()
        check(report.n_records >= 20, f"only {report.n_records} calibration records")
        check(report.after_error >= 0.0, "refit error must be non-negative")
        betas = report.to_dict()["betas"]
        check(set(betas) == {"beta0", "beta1", "beta2", "beta3"},
              f"unexpected beta set {sorted(betas)}")
        print(f"calibrated over {report.n_records} runs: "
              f"relative error {report.before_error:.3g} -> {report.after_error:.3g}, "
              f"mean output q-error {report.mean_output_qerror:.3f}")
        calibrated = service.explain("bench", analyze=True)
        cost = next(c for c in calibrated.root.children if c.name == "cost_model")
        check(cost.attrs["calibrated"] is True and "seconds" in cost.estimates,
              "post-calibration EXPLAIN still prices in load units")

        SAMPLE_PATH.write_text(json.dumps(
            {"explain": plain, "explain_analyze": calibrated.to_dict(),
             "rendered": calibrated.render().splitlines()},
            indent=2, sort_keys=True) + "\n")
        print(f"wrote {SAMPLE_PATH.name}")

        # ---- hot-path budget: tracker must cost < 1% ------------------- #
        overhead = measure_tracker_overhead(service)

    print(f"tracker overhead on the cached path: "
          f"{overhead['overhead_fraction'] * 100:+.2f}% "
          f"(median per-request {overhead['disabled_seconds'] * 1e6:.1f}us off vs "
          f"{overhead['enabled_seconds'] * 1e6:.1f}us on, interleaved over "
          f"{overhead['requests_per_config']} requests per configuration)")

    block = {
        "overhead": overhead,
        "overhead_ok": overhead["overhead_fraction"] < OVERHEAD_BUDGET,
        "calibration": report.to_dict(),
    }
    path = merge_bench_block(block)
    print(f"merged explain block into {path}")
    check(block["overhead_ok"],
          f"non-analyze explain overhead {overhead['overhead_fraction'] * 100:.2f}% "
          f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget")
    print("explain smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
