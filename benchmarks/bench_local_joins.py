"""Micro-benchmarks of the local band-join algorithms.

These are conventional pytest-benchmark timings (multiple rounds) comparing
the per-worker algorithms on a single partition's worth of data — the
substrate whose relative input/output costs the beta coefficients of the
running-time model capture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import pareto_relation
from repro.geometry.band import BandCondition
from repro.local_join.iejoin_local import IEJoinLocal
from repro.local_join.index_nested_loop import IndexNestedLoopJoin
from repro.local_join.nested_loop import NestedLoopJoin
from repro.local_join.sort_band import SortSweepJoin

ALGORITHMS = {
    "nested-loop": NestedLoopJoin(),
    "index-nested-loop": IndexNestedLoopJoin(),
    "sort-sweep": SortSweepJoin(),
    "iejoin-local": IEJoinLocal(),
}


def _worker_partition(n: int = 4000, dims: int = 2):
    s = pareto_relation("S", n, dimensions=dims, z=1.5, seed=31)
    t = pareto_relation("T", n, dimensions=dims, z=1.5, seed=32)
    condition = BandCondition.symmetric([f"A{i+1}" for i in range(dims)], 0.02)
    return (
        s.join_matrix(condition.attributes),
        t.join_matrix(condition.attributes),
        condition,
    )


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_local_join_count_throughput(benchmark, name):
    s_matrix, t_matrix, condition = _worker_partition()
    algorithm = ALGORITHMS[name]
    expected = IndexNestedLoopJoin().count(s_matrix, t_matrix, condition)
    result = benchmark(algorithm.count, s_matrix, t_matrix, condition)
    assert result == expected


def test_index_nested_loop_scales_with_output(benchmark):
    s_matrix, t_matrix, _ = _worker_partition(n=6000, dims=1)
    wide = BandCondition.symmetric(["A1"], 0.05)
    algorithm = IndexNestedLoopJoin()
    count = benchmark(algorithm.count, s_matrix, t_matrix, wide)
    assert count > 0
