"""End-to-end observability smoke check against a real server process.

Starts ``python -m repro serve`` (stdio transport) as a subprocess, drives
it through the line protocol — register, prepare, query twice, then scrape
``stats``, ``metrics``, and ``trace`` — and asserts the telemetry surface
holds together:

* every response parses and reports ``ok: true``,
* ``stats`` carries the scheduler snapshot with the expected counts,
* the Prometheus exposition parses line by line and contains the kernel,
  scheduler, and cache metric families,
* each query trace is a well-formed span tree whose direct children account
  for the root's duration within 10% (the ISSUE acceptance criterion).

Writes the captured traces to ``TRACE_observability.json`` so CI can upload
them as an artifact.  Exits non-zero on any violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_observability.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "TRACE_observability.json"

ROWS = 4000


def build_requests() -> list[dict]:
    import numpy as np

    rng = np.random.default_rng(42)
    return [
        {"op": "ping"},
        {"op": "register", "name": "S", "columns": {"A1": rng.uniform(0, 1, ROWS).tolist()}},
        {"op": "register", "name": "T", "columns": {"A1": rng.uniform(0, 1, ROWS).tolist()}},
        {"op": "prepare", "query": "near", "s": "S", "t": "T",
         "attributes": ["A1"], "epsilons": [0.01]},
        {"op": "query", "query": "near"},
        {"op": "query", "query": "near", "epsilons": [0.02]},
        {"op": "stats"},
        {"op": "metrics"},
        {"op": "trace", "n": 4},
        {"op": "quit"},
    ]


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def validate_prometheus(text: str) -> int:
    samples = 0
    for line in text.strip().splitlines():
        if not line:
            continue
        if line.startswith("#"):
            check(line.startswith(("# HELP ", "# TYPE ")),
                  f"malformed comment line: {line!r}")
            continue
        name_and_labels, _, value = line.rpartition(" ")
        check(bool(name_and_labels), f"malformed sample line: {line!r}")
        try:
            float(value)
        except ValueError:
            check(False, f"non-numeric sample value: {line!r}")
        samples += 1
    for family in ("repro_scheduler_events_total", "repro_kernel_invocations_total",
                   "repro_plan_cache_entries", "repro_result_cache_hits"):
        check(family in text, f"metric family {family} missing from exposition")
    return samples


def span_tree_ok(trace: dict) -> float:
    """Validate one trace tree; return the child/root duration ratio."""
    root = trace["root"]
    check(root["name"] == "request", f"unexpected root span {root['name']!r}")
    check(root["duration"] > 0, "root span has no duration")
    names = [child["name"] for child in root["children"]]
    check("parse" in names, "request trace lost its parse child")
    check("query" in names, "request trace lost its query child")
    query = next(c for c in root["children"] if c["name"] == "query")
    stage_names = {c["name"] for c in query["children"]}
    check("execute" in stage_names, "query trace lost its execute stage")
    child_sum = sum(child["duration"] for child in root["children"])
    return child_sum / root["duration"]


def main() -> int:
    requests = build_requests()
    payload = "".join(json.dumps(request) + "\n" for request in requests)

    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--backend", "threads"],
        input=payload, capture_output=True, text=True, timeout=300,
        env=env, cwd=ROOT,
    )
    check(proc.returncode == 0,
          f"server exited with {proc.returncode}: {proc.stderr[-2000:]}")

    responses = [json.loads(line) for line in proc.stdout.strip().splitlines()]
    check(responses and responses[0].get("op") == "ready", "missing ready banner")
    responses = responses[1:]
    check(len(responses) == len(requests),
          f"expected {len(requests)} responses, got {len(responses)}")
    for request, response in zip(requests, responses):
        check(response.get("ok") is True,
              f"{request['op']} failed: {response.get('error')}")

    by_op = dict(zip((request["op"] for request in requests), responses))

    scheduler = by_op["stats"]["stats"]["scheduler"]
    check(by_op["stats"]["stats"]["telemetry"] is True, "telemetry not enabled in serve mode")
    check(scheduler["submitted"] == 2, f"expected 2 submissions, saw {scheduler['submitted']}")
    check(scheduler["completed"] == 2, f"expected 2 completions, saw {scheduler['completed']}")

    samples = validate_prometheus(by_op["metrics"]["metrics"])
    print(f"prometheus exposition: {samples} samples parsed")

    traces = by_op["trace"]["traces"]
    check(len(traces) == 2, f"expected 2 query traces, got {len(traces)}")
    for trace in traces:
        ratio = span_tree_ok(trace)
        print(f"trace {trace['trace_id']}: {trace['spans']} spans, "
              f"child/root duration ratio {ratio:.3f}")
        check(0.90 <= ratio <= 1.10,
              f"span durations do not account for wall time (ratio {ratio:.3f})")

    OUT_PATH.write_text(json.dumps({"traces": traces}, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name} ({len(traces)} traces)")
    print("observability smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
