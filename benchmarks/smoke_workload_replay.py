"""End-to-end workload capture/replay smoke check.

Drives a live :class:`repro.service.BandJoinService` with capture spooling
enabled through a mixed workload (registrations, prepares, every query
path, a delta append), then closes the loop the observatory promises:

* the SLO monitor — configured with generous objectives — reports the
  service healthy and records **zero breaches** over the run,
* the :class:`~repro.obs.workload.Workload` snapshot taken from the live
  ring agrees with the one rebuilt from the spooled log (drift score 0)
  and survives a JSON round-trip losslessly,
* replaying the spooled log into **fresh** services — once on the threads
  backend and once on the serial backend — reproduces every captured
  result fingerprint exactly (the determinism acceptance criterion).

Writes the live snapshot to ``WORKLOAD_snapshot.json`` so CI can upload it
as an artifact.  Exits non-zero on any violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_workload_replay.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_SRC = ROOT / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

OUT_PATH = ROOT / "WORKLOAD_snapshot.json"

ROWS = 3000
DELTA_ROWS = 150
EPSILONS = (0.005, 0.01, 0.02)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def drive_capture(spool_path: str):
    """Run the mixed workload under capture and return (snapshot, health)."""
    from repro.config import ServiceConfig
    from repro.data.generators import pareto_relation
    from repro.service import BandJoinService

    config = ServiceConfig(
        backend="threads",
        workers=4,
        scheduler_workers=2,
        compaction="sync",
        capture_log=spool_path,
        slo_p99_seconds=60.0,
        slo_error_rate=0.5,
        slo_cache_hit_floor=0.0,
        slo_queue_depth=1_000,
        slo_interval=0.0,  # evaluate on demand, not on a background cadence
    )
    with BandJoinService(config) as service:
        s = pareto_relation("S", ROWS, dimensions=2, z=1.5, seed=1)
        t = pareto_relation("T", ROWS, dimensions=2, z=1.5, seed=2)
        service.register("S", s)
        service.register("T", t)
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=EPSILONS[0])
        service.prepare("wide", "S", "T", attributes=["A1"], epsilons=0.03)

        for eps in EPSILONS:  # cold per epsilon, then result-cache repeats
            service.query("near", eps)
        for eps in EPSILONS:
            service.query("near", eps)
        service.query("wide")

        delta = pareto_relation("S", DELTA_ROWS, dimensions=2, z=1.5, seed=3)
        service.append("S", delta)
        for eps in EPSILONS:  # delta path after the append
            service.query("near", eps)

        health = service.health()
        snapshot = service.workload_snapshot()
    return snapshot, health


def main() -> int:
    from repro.obs.workload import Workload, replay_log

    with tempfile.TemporaryDirectory() as tmp:
        spool = str(Path(tmp) / "capture.jsonl")
        snapshot, health = drive_capture(spool)

        check(health["healthy"] is True, f"service unhealthy under smoke load: {health}")
        breaches = health["breaches_total"]
        check(breaches == 0, f"expected zero SLO breaches, saw {breaches}: {health}")
        print(f"health: OK ({len(health['objectives'])} objectives, 0 breaches)")

        queries = snapshot.total_arrivals
        check(queries == 10, f"expected 10 captured query arrivals, saw {queries}")

        # The ring view and the spooled log must describe the same workload.
        from_log = Workload.from_log_file(spool)
        drift = snapshot.diff(from_log)["score"]
        check(drift == 0.0, f"ring vs spool snapshot drift {drift}")

        # JSON round-trip is lossless.
        roundtrip = Workload.from_json(snapshot.to_json())
        check(snapshot.diff(roundtrip)["score"] == 0.0, "snapshot JSON round-trip drifted")

        OUT_PATH.write_text(snapshot.to_json(indent=2) + "\n")
        print(f"wrote {OUT_PATH.name} ({queries} query arrivals, "
              f"drift vs spool {drift:.3f})")

        # Replay must reproduce every captured fingerprint, on both a
        # threaded and a serial stack (pair order differs; content must not).
        from repro.config import ServiceConfig

        for backend, workers in (("threads", 2), ("serial", 1)):
            config = ServiceConfig(
                backend=backend, scheduler_workers=workers,
                capture=False, compaction="sync",
            )
            report = replay_log(spool, config=config, speed=None)
            check(report.ok, f"replay on {backend} diverged:\n{report.describe()}")
            check(report.verified == 10,
                  f"replay on {backend} verified {report.verified}/10 fingerprints")
            print(f"replay[{backend}]: {report.events} events, "
                  f"{report.verified} fingerprints verified, 0 mismatches")

    print("workload replay smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
