"""Paper Table 16: PTF celestial matching with RecPart's theoretical termination."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table16


def test_table16_ptf_theoretical_termination(benchmark):
    result = benchmark.pedantic(
        lambda: table16(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table16", result.format())
    # RecPart beats 1-Bucket and Grid-eps on both duplication and max worker
    # input for the arc-second matching workloads.
    for experiment in result.experiments:
        recpart = experiment.result_for("RecPart")
        for method in ("1-Bucket", "Grid-eps"):
            other = experiment.result_for(method)
            if other.failed:
                continue
            assert recpart.total_input <= other.total_input
            assert recpart.max_worker_input <= other.max_worker_input * 1.2
