"""Paper Tables 7 and 11: RecPart-S vs distributed IEJoin across block sizes."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table7


def test_table7_iejoin_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: table7(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table7_table11", result.format())
    # For every workload, RecPart-S ships less total input than the best IEJoin
    # block size (the paper's "significantly better partitionings" finding).
    by_workload: dict[str, dict[str, list]] = {}
    for row in result.custom_rows:
        workload, method = row[0], row[1]
        by_workload.setdefault(workload, {}).setdefault(method, []).append(row)
    for workload, methods in by_workload.items():
        recpart_input = methods["RecPart-S"][0][4]
        best_iejoin_input = min(row[4] for row in methods["IEJoin"])
        assert recpart_input <= best_iejoin_input, workload
