"""Paper Table 12 and Figure 9: accuracy of the running-time model.

The model is calibrated against in-process local-join micro-benchmarks (the
same procedure the paper runs against its cluster) and its predictions are
compared with the measured execution of every method on a cross-section of
workloads; Figure 9 is the cumulative distribution of the relative error.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_scale, write_report

from repro.cost.calibration import calibrate_running_time_model
from repro.experiments.figures import Figure9Data
from repro.experiments.tables import table12
from repro.metrics.report import format_table


def test_table12_and_figure9_model_accuracy(benchmark):
    calibration = calibrate_running_time_model(n_queries=20, base_input=3000, seed=3)

    result = benchmark.pedantic(
        lambda: table12(scale=bench_scale() * 0.7, calibration=calibration),
        rounds=1,
        iterations=1,
    )
    errors = [row[4] for row in result.custom_rows if row[4] is not None]
    figure9 = Figure9Data(errors=errors)
    summary = format_table(
        ["checkpoint", "value"], figure9.summary_rows(), title="Figure 9: model error CDF"
    )
    write_report("table12_figure9", result.format() + "\n\n" + summary)

    assert len(errors) >= 8
    # The model must be informative: the bulk of predictions within a factor ~2
    # of the measurement (the paper reports <20% error for 71% of cases on a
    # real cluster; the in-process proxy is noisier but must stay in the same
    # ballpark).
    assert figure9.fraction_below(1.0) >= 0.6
