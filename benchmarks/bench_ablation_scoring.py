"""Ablation: RecPart's split-scoring measure and termination condition.

DESIGN.md calls out the split score (variance-reduction / duplication ratio)
and the termination condition as the design choices that make RecPart work.
This bench compares the paper's choices against the ablated variants on the
skewed 3D Pareto workload:

* scoring "ratio" (paper) vs "variance" (greedy balance, ignores duplication)
  vs "duplication" (avoid duplication at all costs),
* applied (cost model) vs theoretical (lower-bound) termination.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.config import RecPartConfig
from repro.core.recpart import RecPartPartitioner
from repro.cost.lower_bounds import compute_lower_bounds
from repro.distributed.executor import DistributedBandJoinExecutor
from repro.experiments.workloads import pareto_workload
from repro.metrics.report import format_table


def _run_variants(scale: float) -> list[list]:
    workload = pareto_workload(0.05, dimensions=3, rows_per_input=max(4000, int(50_000 * scale)))
    s, t, condition = workload.build()
    workers = workload.workers
    bounds = compute_lower_bounds(s, t, condition, workers)
    executor = DistributedBandJoinExecutor()
    rows = []
    variants = [
        ("ratio + applied (paper)", RecPartConfig(scoring="ratio", termination="applied")),
        ("ratio + theoretical", RecPartConfig(scoring="ratio", termination="theoretical")),
        ("variance-only scoring", RecPartConfig(scoring="variance", termination="applied")),
        ("duplication-only scoring", RecPartConfig(scoring="duplication", termination="applied")),
        ("small sample (512)", RecPartConfig(scoring="ratio", sample_size=512)),
    ]
    for label, config in variants:
        partitioning = RecPartPartitioner(config=config).partition(s, t, condition, workers)
        result = executor.execute(s, t, condition, partitioning)
        rows.append(
            [
                label,
                partitioning.stats.iterations,
                result.total_input,
                bounds.input_overhead(result.total_input),
                result.max_worker_input,
                result.max_worker_output,
                bounds.load_overhead(result.max_worker_load),
            ]
        )
    return rows


def test_ablation_scoring_and_termination(benchmark):
    rows = benchmark.pedantic(lambda: _run_variants(bench_scale()), rounds=1, iterations=1)
    table = format_table(
        ["variant", "iterations", "I", "dup overhead", "I_m", "O_m", "load overhead"],
        rows,
        title="Ablation: split scoring measure and termination condition",
    )
    write_report("ablation_scoring", table)
    by_label = {row[0]: row for row in rows}
    paper = by_label["ratio + applied (paper)"]
    duplication_only = by_label["duplication-only scoring"]
    variance_only = by_label["variance-only scoring"]
    # Ignoring duplication must cost extra input; ignoring balance must cost load.
    assert variance_only[3] >= paper[3] - 0.05
    assert duplication_only[6] >= paper[6] - 0.05
