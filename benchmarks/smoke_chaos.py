"""End-to-end chaos smoke check: correctness is never sacrificed to faults.

Captures a mixed served workload fault-free, then replays the spooled log
into a fresh service with deterministic fault injection turned on
(``worker_crash:0.1,task_slow:0.05`` — one worker death per ten tasks and
one straggler per twenty).  The acceptance bar:

* **100% of admitted queries succeed** under chaos — the replay report
  counts zero failures and zero overload rejections,
* **every answer is bit-identical**: all replayed fingerprints match the
  fault-free capture (crash recovery may cost retries and fallbacks, never
  pairs),
* injected **torn segment writes** on mmap storage are detected by
  checksum, retried into fresh directories, and still register — no
  silent corruption,
* recovery work is *visible*: the retry/crash telemetry counters moved.

Also measures p99 latency inflation (chaos vs fault-free) over the same
direct query loop and writes ``BENCH_chaos.json`` with the success rate,
recovery counter deltas, fault firing statistics and the latency tax.
Exits non-zero on any violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_chaos.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_SRC = ROOT / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

OUT_PATH = ROOT / "BENCH_chaos.json"

ROWS = 3000
EPSILONS = (0.005, 0.01, 0.02)
FAULT_SPEC = "worker_crash:0.1,task_slow:0.05"
# Fault keys are (backend, task, attempt), so a workload of identical plans
# re-draws the same few keys; this seed is one where a 0.1-rate crash key
# actually fires on the 4-task thread plans this smoke produces.
FAULT_SEED = 29
LATENCY_QUERIES = 24


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def force_real_pools() -> None:
    """Pin pool sizing above 1 so single-CPU runners still exercise the
    crash-recovery machinery instead of quietly taking the serial shortcut."""
    from repro.engine import backends

    width = max(2, os.cpu_count() or 1)
    backends._default_parallelism = lambda: width


def recovery_totals() -> dict[str, float]:
    """Sum the process-wide recovery counters across their label sets."""
    from repro.obs.globals import registry

    totals = {}
    for name in (
        "repro_task_retries_total",
        "repro_worker_crashes_total",
        "repro_backend_fallbacks_total",
        "repro_segment_recoveries_total",
    ):
        counter = registry().counter(name)
        totals[name] = sum(count for _, count in counter.items())
    return totals


def drive_capture(spool_path: str) -> int:
    """Capture the reference workload fault-free; returns the query count."""
    from repro.config import ServiceConfig
    from repro.data.generators import pareto_relation
    from repro.service import BandJoinService

    config = ServiceConfig(
        backend="threads", workers=4, scheduler_workers=2,
        compaction="sync", capture_log=spool_path,
    )
    with BandJoinService(config) as service:
        s = pareto_relation("S", ROWS, dimensions=2, z=1.5, seed=1)
        t = pareto_relation("T", ROWS, dimensions=2, z=1.5, seed=2)
        service.register("S", s)
        service.register("T", t)
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=EPSILONS[0])
        service.prepare("wide", "S", "T", attributes=["A1"], epsilons=0.03)
        queries = 0
        for eps in EPSILONS:
            service.query("near", eps)
            queries += 1
        service.query("wide")
        queries += 1
        delta = pareto_relation("S", ROWS // 20, dimensions=2, z=1.5, seed=3)
        service.append("S", delta)
        for eps in EPSILONS:
            service.query("near", eps)
            queries += 1
    return queries


def latency_p99(inject: str | None) -> float:
    """p99 of the same cache-miss query loop, with and without chaos."""
    from repro.config import ServiceConfig
    from repro.data.generators import pareto_relation
    from repro.service import BandJoinService

    config = ServiceConfig(
        backend="threads", workers=4, scheduler_workers=2,
        compaction="sync", capture=False,
        inject_faults=inject, fault_seed=FAULT_SEED,
    )
    with BandJoinService(config) as service:
        service.register("S", pareto_relation("S", ROWS, dimensions=2, z=1.5, seed=1))
        service.register("T", pareto_relation("T", ROWS, dimensions=2, z=1.5, seed=2))
        service.prepare("near", "S", "T", attributes=["A1", "A2"], epsilons=0.01)
        # A distinct epsilon per query keeps every request a cache miss, so
        # the percentile measures execution (and its retries), not cache hits.
        for i in range(LATENCY_QUERIES):
            service.query("near", 0.004 + i * 0.0005)
        return service.stats()["scheduler"]["latency"]["p99"]


def torn_storage_leg() -> int:
    """Register on mmap storage with every spill torn; must still succeed."""
    import numpy as np

    from repro.config import ServiceConfig
    from repro.service import BandJoinService

    rng = np.random.default_rng(5)
    with tempfile.TemporaryDirectory() as spill:
        config = ServiceConfig(
            backend="serial", compaction="sync", capture=False,
            storage="mmap", spill_dir=spill, spill_threshold_bytes=1,
            inject_faults="spill_torn:1", fault_seed=FAULT_SEED,
        )
        with BandJoinService(config) as service:
            service.register("S", {"A1": rng.normal(size=2000)})
            service.register("T", {"A1": rng.normal(size=2000)})
            service.prepare("q", "S", "T", attributes=["A1"], epsilons=0.01)
            result = service.query("q")
            check(result.n_pairs > 0, "torn-storage service produced no pairs")
            return result.n_pairs


def main() -> int:
    force_real_pools()
    from repro.config import ServiceConfig
    from repro.obs.workload import replay_log

    with tempfile.TemporaryDirectory() as tmp:
        spool = str(Path(tmp) / "capture.jsonl")
        captured = drive_capture(spool)
        print(f"captured {captured} fault-free queries to the spool")

        before = recovery_totals()
        chaos_config = ServiceConfig(
            backend="threads", workers=4, scheduler_workers=2,
            capture=False, compaction="sync", degraded_mode="reject",
            inject_faults=FAULT_SPEC, fault_seed=FAULT_SEED,
        )
        report = replay_log(spool, config=chaos_config, speed=None)
        after = recovery_totals()

    print(report.describe())
    check(report.ok, "chaos replay diverged from the fault-free capture")
    check(report.rejected == 0,
          f"{report.rejected} queries rejected under chaos; expected 0")
    check(report.verified == captured,
          f"verified {report.verified}/{captured} fingerprints under chaos")
    check(report.fault_stats is not None and report.fault_stats["fired"],
          f"fault injector never fired: {report.fault_stats}")

    recovery = {name: after[name] - before[name] for name in after}
    retries = recovery["repro_task_retries_total"]
    check(retries > 0, "no task retries recorded — chaos exercised nothing")
    print(f"recovery under {FAULT_SPEC!r}: "
          f"{retries:.0f} task retries, "
          f"{recovery['repro_worker_crashes_total']:.0f} worker crashes, "
          f"{recovery['repro_backend_fallbacks_total']:.0f} backend fallbacks")

    torn_pairs = torn_storage_leg()
    torn_recoveries = recovery_totals()["repro_segment_recoveries_total"]
    check(torn_recoveries > 0, "torn spills never tripped the checksum retry")
    print(f"torn-storage leg: {torn_pairs:,} pairs served, "
          f"{torn_recoveries:.0f} segment recoveries")

    baseline_p99 = latency_p99(None)
    chaos_p99 = latency_p99(FAULT_SPEC)
    inflation = chaos_p99 / baseline_p99 if baseline_p99 > 0 else float("inf")
    print(f"p99 latency: fault-free {baseline_p99 * 1e3:.2f} ms, "
          f"chaos {chaos_p99 * 1e3:.2f} ms ({inflation:.2f}x)")

    OUT_PATH.write_text(json.dumps({
        "fault_spec": FAULT_SPEC,
        "fault_seed": FAULT_SEED,
        "queries": captured,
        "verified": report.verified,
        "success_rate": 1.0,
        "mismatches": len(report.mismatches),
        "rejected": report.rejected,
        "fault_stats": report.fault_stats,
        "recovery_counters": recovery,
        "torn_segment_recoveries": torn_recoveries,
        "p99_seconds_baseline": baseline_p99,
        "p99_seconds_chaos": chaos_p99,
        "p99_inflation": inflation,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")

    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
