"""Paper Table 5: the effect of grid size on Grid-eps, and the Grid* search."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table5


def test_table5_grid_size_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: table5(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table5", result.format())
    rows = {row[0]: row for row in result.custom_rows}
    fine = rows.get("Grid (cell = 1 x eps)")
    coarse = rows.get("Grid (cell = 32 x eps)")
    # Coarsening the grid reduces total input (the I column of the paper's table).
    if fine and coarse and fine[1] is not None and coarse[1] is not None:
        assert coarse[1] < fine[1]
    # Grid* must not be worse than the default eps-sized grid on total input.
    grid_star = rows.get("Grid*")
    if fine and grid_star and fine[1] is not None:
        assert grid_star[1] <= fine[1]
