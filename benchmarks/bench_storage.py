"""Out-of-core storage benchmark: join a dataset ~10x a memory ceiling.

The proof obligation of the pluggable column-storage layer: generate two
wide relations directly into memory-mapped segments (they are never heap
resident), size the pair so the on-disk payload is **ten times** a
configured memory ceiling, and run a streamed band-join whose peak
resident-set growth must stay **under** that ceiling.  Two runs are
enforced — a zero-materialization count and a materialized run with a
narrow band — then a non-enforced phase re-joins the same join-attribute
values on the ordinary in-memory path and demands the exact same pair set.

The peak is measured with the kernel's own high-water mark
(``VmHWM`` from ``/proc/self/status``), reset at the start of each
enforced run via ``/proc/self/clear_refs``, so the number covers exactly
the streamed join: routing, spill-backed worker tasks, kernels and merge.
On platforms without a resettable high-water mark the run still verifies
correctness but records ``"enforced": false`` instead of failing.

Writes ``BENCH_storage.json`` at the repository root (override with
``REPRO_BENCH_STORAGE_OUT``) and exits nonzero on a ceiling breach or a
pair-set mismatch::

    PYTHONPATH=src python benchmarks/bench_storage.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.recpart import RecPartPartitioner
from repro.geometry.band import BandCondition
from repro.data.relation import Relation
from repro.data.storage import MmapColumnStore
from repro.engine.engine import ParallelJoinEngine
from repro.obs.process import (
    current_rss_bytes,
    peak_rss_bytes,
    reset_peak_rss,
)

#: Dataset-to-ceiling ratio the benchmark certifies.
CEILING_RATIO = 10.0

FULL = dict(rows=500_000, payload_cols=39, epsilon=4e-7, chunk_bytes=1 << 20)
SMOKE = dict(rows=250_000, payload_cols=39, epsilon=8e-7, chunk_bytes=512 << 10)

#: Resident-page budget per mapped segment chain: pages read from the
#: segments are dropped (``madvise(MADV_DONTNEED)``) once a chain exceeds
#: this, so streaming over a 10x-RAM relation leaves no lasting footprint.
RECYCLE_BYTES = 8 << 20


def _generate_side(
    name: str, rows: int, payload_cols: int, seed: int, directory: str
) -> Relation:
    """Stream-generate one wide relation straight into mmap segments.

    The join attribute ``A1`` comes from its own generator stream so the
    verification phase can regenerate exactly those values without touching
    the payload; the payload columns only exist to make the dataset large.
    """
    gen_rows = 25_000
    rng_join = np.random.default_rng(seed)
    rng_payload = np.random.default_rng(seed + 1_000_003)

    def chunks():
        for start in range(0, rows, gen_rows):
            n = min(gen_rows, rows - start)
            chunk = {"A1": rng_join.random(n)}
            for j in range(payload_cols):
                chunk[f"P{j:02d}"] = rng_payload.random(n)
            yield chunk

    store = MmapColumnStore.write(directory, chunks(), recycle_bytes=RECYCLE_BYTES)
    return Relation.from_store(name, store)


def _join_values(rows: int, seed: int) -> np.ndarray:
    """Regenerate the ``A1`` stream of :func:`_generate_side`."""
    return np.random.default_rng(seed).random(rows)


def _canonical_pairs(pairs: np.ndarray | None) -> np.ndarray:
    if pairs is None or pairs.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    return np.unique(np.asarray(pairs, dtype=np.int64), axis=0)


def run_storage_benchmark(
    rows: int,
    payload_cols: int,
    epsilon: float,
    chunk_bytes: int,
    backend: str = "serial",
    workers: int = 4,
    spill_root: str | None = None,
) -> dict:
    """Run the full generate → enforce → verify cycle and return the record."""
    work_dir = tempfile.mkdtemp(prefix="bench-storage-", dir=spill_root)
    try:
        return _run(rows, payload_cols, epsilon, chunk_bytes, backend, workers, work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


def _run(
    rows: int,
    payload_cols: int,
    epsilon: float,
    chunk_bytes: int,
    backend: str,
    workers: int,
    work_dir: str,
) -> dict:
    print(
        f"generating 2 x {rows:,} rows x {payload_cols + 1} columns "
        f"into mmap segments under {work_dir} ..."
    )
    generate_start = time.perf_counter()
    s = _generate_side("S", rows, payload_cols, seed=1, directory=os.path.join(work_dir, "S"))
    t = _generate_side("T", rows, payload_cols, seed=2, directory=os.path.join(work_dir, "T"))
    generate_seconds = time.perf_counter() - generate_start
    dataset_bytes = s.nbytes + t.nbytes
    ceiling_bytes = int(dataset_bytes / CEILING_RATIO)
    print(
        f"dataset: {dataset_bytes / 1e6:.1f} MB on disk "
        f"({s.segment_count + t.segment_count} segments), "
        f"ceiling: {ceiling_bytes / 1e6:.1f} MB "
        f"(ratio {dataset_bytes / ceiling_bytes:.1f}x), "
        f"generated in {generate_seconds:.1f}s"
    )

    condition = BandCondition.symmetric(["A1"], epsilon)
    engine = ParallelJoinEngine(
        backend=backend, spill_dir=work_dir, chunk_bytes=chunk_bytes
    )
    partitioning = RecPartPartitioner().partition(s, t, condition, workers=workers)

    record = {
        "workload": {
            "rows_per_input": rows,
            "columns_per_input": payload_cols + 1,
            "epsilon": epsilon,
            "workers": workers,
            "backend": backend,
            "chunk_bytes": chunk_bytes,
        },
        "dataset_bytes": dataset_bytes,
        "ceiling_bytes": ceiling_bytes,
        "ceiling_ratio": dataset_bytes / ceiling_bytes,
        "segments": {"s": s.segment_count, "t": t.segment_count},
        "generate_seconds": round(generate_seconds, 3),
        "machine": {"cpus": os.cpu_count(), "platform": sys.platform},
        "runs": {},
    }

    # Warm the streamed code paths (routing spill writers, kernels, merge)
    # on a tiny mmap join first: imports, bytecode and numpy's internal
    # buffers are one-time process growth, not part of the join's working
    # set, and must not be billed to the first enforced run.
    warm_s = _generate_side("WS", 10_000, 1, seed=31, directory=os.path.join(work_dir, "WS"))
    warm_t = _generate_side("WT", 10_000, 1, seed=32, directory=os.path.join(work_dir, "WT"))
    warm_plan = RecPartPartitioner().partition(warm_s, warm_t, condition, workers=workers)
    for warm_materialize in (False, True):
        engine.execute(warm_s, warm_t, condition, warm_plan, materialize=warm_materialize)

    enforced = reset_peak_rss()
    record["enforced"] = enforced
    if not enforced:
        print("warning: peak-RSS reset unsupported here; ceiling not enforced")

    pairs = None
    for label, materialize in (("count", False), ("materialize", True)):
        baseline = current_rss_bytes()
        reset_peak_rss()
        run_start = time.perf_counter()
        result = engine.execute(s, t, condition, partitioning, materialize=materialize)
        run_seconds = time.perf_counter() - run_start
        peak_delta = max(0, peak_rss_bytes() - baseline)
        ok = (not enforced) or peak_delta <= ceiling_bytes
        record["runs"][label] = {
            "pairs": int(result.total_output),
            "seconds": round(run_seconds, 3),
            "baseline_rss_bytes": baseline,
            "peak_rss_delta_bytes": peak_delta,
            "under_ceiling": bool(ok),
        }
        print(
            f"{label:>11}: {result.total_output:,} pairs in {run_seconds:.1f}s, "
            f"peak RSS delta {peak_delta / 1e6:.1f} MB "
            f"({'OK' if ok else 'BREACH'} vs {ceiling_bytes / 1e6:.1f} MB ceiling)"
        )
        if materialize:
            pairs = _canonical_pairs(result.pairs)

    # Verification phase (not ceiling-enforced): the same join-attribute
    # values on the all-heap path must produce the identical pair set.
    s_ref = Relation("S", {"A1": _join_values(rows, seed=1)})
    t_ref = Relation("T", {"A1": _join_values(rows, seed=2)})
    ref_partitioning = RecPartPartitioner().partition(s_ref, t_ref, condition, workers=workers)
    ref = engine.execute(s_ref, t_ref, condition, ref_partitioning, materialize=True)
    ref_pairs = _canonical_pairs(ref.pairs)
    match = bool(
        pairs is not None
        and pairs.shape == ref_pairs.shape
        and np.array_equal(pairs, ref_pairs)
    )
    record["verification"] = {
        "reference_pairs": int(ref_pairs.shape[0]),
        "streamed_pairs": int(0 if pairs is None else pairs.shape[0]),
        "pair_sets_match": match,
    }
    print(
        f"verification: streamed {record['verification']['streamed_pairs']:,} pairs "
        f"vs in-memory {ref_pairs.shape[0]:,} — "
        f"{'identical' if match else 'MISMATCH'}"
    )

    record["ok"] = bool(
        match and all(run["under_ceiling"] for run in record["runs"].values())
    )
    return record


def record_path() -> Path:
    override = os.environ.get("REPRO_BENCH_STORAGE_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_storage.json"


def write_record(record: dict) -> Path:
    path = record_path()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--rows", type=int, default=None, help="rows per input")
    parser.add_argument("--payload-cols", type=int, default=None)
    parser.add_argument("--epsilon", type=float, default=None)
    parser.add_argument("--backend", type=str, default="serial")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--spill-root", type=str, default=None)
    args = parser.parse_args(argv)

    params = dict(SMOKE if args.smoke else FULL)
    if args.rows is not None:
        params["rows"] = args.rows
    if args.payload_cols is not None:
        params["payload_cols"] = args.payload_cols
    if args.epsilon is not None:
        params["epsilon"] = args.epsilon

    record = run_storage_benchmark(
        backend=args.backend,
        workers=args.workers,
        spill_root=args.spill_root,
        **params,
    )
    path = write_record(record)
    print(f"[record written to {path}]")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
