"""Paper Tables 8 and 13: impact of the shuffle-vs-local-cost ratio (beta2/beta1).

RecPart re-optimises its partitioning for every cost-model shape, trading a
little extra duplication for lower max worker load as local processing gets
more expensive; the competitors ignore the ratio by design.
"""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table8


def test_table8_beta_ratio_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: table8(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table8_table13", result.format())
    rows = result.custom_rows
    assert len(rows) >= 3
    # As beta2/beta1 grows, RecPart's local overhead (4*I_m + O_m) must not grow:
    # the optimizer shifts effort toward balancing the local work.
    first_local = rows[0][2]
    last_local = rows[-1][2]
    assert last_local <= first_local * 1.1
