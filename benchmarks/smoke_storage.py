"""CI smoke of the out-of-core storage layer (small bench_storage run).

Runs :mod:`bench_storage` at the CI-sized scale — two mmap-segment
relations totalling ~160 MB joined under a hard 16 MB resident-set
ceiling — and fails the job on a ceiling breach or on any divergence
from the in-memory reference pair set.  The perf record still lands in
``BENCH_storage.json`` so the job can upload it::

    PYTHONPATH=src python benchmarks/smoke_storage.py
"""

from __future__ import annotations

import sys

import bench_storage


def main() -> int:
    code = bench_storage.main(["--smoke"])
    if code != 0:
        print("storage smoke FAILED: memory ceiling breached or pair sets diverged")
    return code


if __name__ == "__main__":
    sys.exit(main())
