"""Paper Table 2 (a/b/c): impact of band width on every method.

Regenerates the three band-width sweeps of Section 6.2: 1D pareto-1.5,
3D pareto-1.5 and the 3D ebird-joins-cloud workload, reporting per method the
optimization time, model-estimated join time, total input ``I`` and the
most-loaded worker's input/output (``I_m`` / ``O_m``).
"""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table2a, table2b, table2c


def test_table2a_band_width_1d(benchmark):
    """Table 2a: pareto-1.5, d=1, varying band width."""
    result = benchmark.pedantic(
        lambda: table2a(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table2a", result.format())
    assert len(result.experiments) == 4


def test_table2b_band_width_3d(benchmark):
    """Table 2b: pareto-1.5, d=3, varying band width."""
    result = benchmark.pedantic(
        lambda: table2b(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table2b", result.format())
    # Headline claim of the table: RecPart-S ships the least input in every row.
    for experiment in result.experiments:
        recpart = experiment.result_for("RecPart-S")
        for other in experiment.successful():
            if other.method != "RecPart-S":
                assert recpart.total_input <= other.total_input * 1.05


def test_table2c_band_width_ebird_cloud(benchmark):
    """Table 2c: ebird joins cloud, d=3, varying band width."""
    result = benchmark.pedantic(
        lambda: table2c(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table2c", result.format())
    assert len(result.experiments) == 4
