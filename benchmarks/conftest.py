"""Shared configuration of the benchmark suite.

Every benchmark reproduces one table or figure of the paper's evaluation
section.  The benchmarks run each experiment exactly once (``pedantic`` with
a single round — the experiments are deterministic and far too large for
statistical repetition) and write the resulting table text to
``benchmarks/reports/`` in addition to printing it.

Environment knobs
-----------------
REPRO_BENCH_SCALE
    Input-size scale factor relative to the default workloads (50,000 tuples
    per input).  Defaults to 0.3 so the full suite finishes in tens of
    minutes; set to 1.0 for the full-size run.
REPRO_BENCH_VERIFY
    Set to ``count`` or ``pairs`` to re-verify every distributed result
    against a single-machine join during the benchmarks (off by default; the
    test suite already covers correctness).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Directory that receives the rendered table reports.
REPORTS_DIR = Path(__file__).resolve().parent / "reports"


def bench_scale(default: float | None = None) -> float:
    """Return the benchmark scale factor (see module docstring)."""
    value = os.environ.get("REPRO_BENCH_SCALE")
    if value is None:
        return default if default is not None else 0.3
    return float(value)


def bench_verify() -> str:
    """Return the verification mode used by the benchmarks."""
    return os.environ.get("REPRO_BENCH_VERIFY", "none")


def write_report(name: str, text: str) -> Path:
    """Write one rendered table to the reports directory and echo it."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path


@pytest.fixture
def reports() -> Path:
    """Fixture exposing the reports directory."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)
    return REPORTS_DIR
