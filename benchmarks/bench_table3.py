"""Paper Table 3: skew resistance (pareto-z, z = 0.5 ... 2.0, d = 3)."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table3


def test_table3_skew_resistance(benchmark):
    result = benchmark.pedantic(
        lambda: table3(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table3", result.format())
    # RecPart-S keeps duplication far below the grid-style baselines on every
    # skew level (the blue-vs-red contrast of the paper's table).
    for experiment in result.experiments:
        recpart = experiment.result_for("RecPart-S")
        grid = experiment.result_for("Grid-eps")
        if not grid.failed:
            assert recpart.duplication_overhead < grid.duplication_overhead
