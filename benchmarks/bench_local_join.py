"""Benchmark of the vectorized local-join kernel layer.

Pits the **seed per-tuple loop kernels** (the sort-sweep window loop and
IEJoin bit-array loop the repository started with, preserved verbatim below
as reference implementations) against the vectorized chunked-``searchsorted``
kernels of :mod:`repro.local_join`, per input size and dimensionality, on a
Table-2-style Pareto workload.

Besides the rendered table the benchmark emits a machine-readable perf
record to ``BENCH_local_join.json`` at the repository root (override with
``REPRO_BENCH_LOCAL_JOIN_OUT``):

* per-kernel ``join()`` and ``count()`` seconds per workload,
* the vectorized-over-loop speedups (the acceptance gate: the vectorized
  sort-sweep must beat the seed loop by >= 5x at 100k x 100k rows, with the
  exact same canonically ordered pair set),
* a proof that the 1-D ``count()`` path performs no candidate expansion at
  all (the expansion hook is patched to fail, the count must still answer).

Run standalone for the full-size measurement (two sizes up to 100k tuples
per side)::

    PYTHONPATH=src python benchmarks/bench_local_join.py

or pass ``--smoke`` for the small CI configuration.  The per-tuple loop
kernels are only timed up to ``LOOP_ROWS_CAP`` rows except the sort-sweep
loop (the acceptance comparison), which always runs — the caps are recorded
in the output rather than silently applied.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.data.generators import pareto_relation  # noqa: E402
from repro.geometry.band import BandCondition  # noqa: E402
from repro.local_join import (  # noqa: E402
    AutoJoin,
    IEJoinLocal,
    IndexNestedLoopJoin,
    SortSweepJoin,
    kernels,
)
from repro.local_join.base import (  # noqa: E402
    LocalJoinAlgorithm,
    as_matrix,
    canonical_pair_order,
    empty_pairs,
)
from repro.metrics.report import format_table  # noqa: E402

#: Full-size benchmark shapes: (rows per side, dimensionality, band width).
FULL_WORKLOADS = (
    (20_000, 1, 0.001),
    (20_000, 2, 0.01),
    (100_000, 1, 0.0002),
    (100_000, 2, 0.01),
)
#: CI smoke shapes.
SMOKE_WORKLOADS = (
    (4_000, 1, 0.005),
    (4_000, 2, 0.02),
)
SKEW = 1.5

#: The quadratic-ish loop kernels other than the acceptance pair are only
#: timed up to this size (the seed IEJoin loop scans an O(n) bit-array
#: prefix per T-tuple — minutes at 100k rows).
LOOP_ROWS_CAP = 20_000

#: Acceptance gate of the vectorized sort-sweep over the seed loop.
ACCEPTANCE_ROWS = 100_000
ACCEPTANCE_SPEEDUP = 5.0


# --------------------------------------------------------------------- #
# Seed loop kernels (reference; preserved from the pre-vectorization tree)
# --------------------------------------------------------------------- #
class LoopSortSweepJoin(LocalJoinAlgorithm):
    """The seed per-S-row window sweep (verbatim reference implementation)."""

    name = "loop-sort-sweep"

    def join(self, s_values, t_values, condition):
        pairs, _ = self._sweep(s_values, t_values, condition, materialize=True)
        return pairs

    def count(self, s_values, t_values, condition):
        _, total = self._sweep(s_values, t_values, condition, materialize=False)
        return total

    def _sweep(self, s_values, t_values, condition, materialize):
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        if s_arr.shape[0] == 0 or t_arr.shape[0] == 0:
            return empty_pairs(), 0
        pred = condition.predicates[0]
        s_order = np.argsort(s_arr[:, 0], kind="stable")
        t_order = np.argsort(t_arr[:, 0], kind="stable")
        s_sorted = s_arr[s_order]
        t_sorted = t_arr[t_order]
        t_keys = t_sorted[:, 0]
        other_dims = list(range(1, d))
        chunks, total = [], 0
        window_lo = window_hi = 0
        n_t = t_sorted.shape[0]
        for pos, s_row in enumerate(s_sorted):
            low_bound = s_row[0] - pred.eps_left
            high_bound = s_row[0] + pred.eps_right
            while window_lo < n_t and t_keys[window_lo] < low_bound:
                window_lo += 1
            if window_hi < window_lo:
                window_hi = window_lo
            while window_hi < n_t and t_keys[window_hi] <= high_bound:
                window_hi += 1
            if window_lo >= window_hi:
                continue
            window = slice(window_lo, window_hi)
            keep = np.ones(window_hi - window_lo, dtype=bool)
            for i in other_dims:
                other_pred = condition.predicates[i]
                diff = t_sorted[window, i] - s_row[i]
                keep &= (diff >= -other_pred.eps_left) & (diff <= other_pred.eps_right)
            matched = np.nonzero(keep)[0]
            if matched.size == 0:
                continue
            if materialize:
                s_idx = np.full(matched.size, s_order[pos], dtype=np.int64)
                chunks.append(np.column_stack([s_idx, t_order[window_lo + matched]]))
            else:
                total += int(matched.size)
        if materialize:
            if not chunks:
                return empty_pairs(), 0
            pairs = np.concatenate(chunks)
            return pairs, int(pairs.shape[0])
        return empty_pairs(), total


class LoopIEJoin(LocalJoinAlgorithm):
    """The seed per-T-tuple IEJoin bit-array loop (verbatim reference)."""

    name = "loop-iejoin"

    def join(self, s_values, t_values, condition):
        pairs, _ = self._iejoin(s_values, t_values, condition, materialize=True)
        return pairs

    def count(self, s_values, t_values, condition):
        _, total = self._iejoin(s_values, t_values, condition, materialize=False)
        return total

    def _iejoin(self, s_values, t_values, condition, materialize):
        d = condition.dimensionality
        s_arr = as_matrix(s_values, d)
        t_arr = as_matrix(t_values, d)
        n_s, n_t = s_arr.shape[0], t_arr.shape[0]
        if n_s == 0 or n_t == 0:
            return empty_pairs(), 0
        pred = condition.predicates[0]
        other_dims = list(range(1, d))
        s_x = s_arr[:, 0]
        t_x = t_arr[:, 0] + pred.eps_left
        t_y = t_arr[:, 0] - pred.eps_right
        s_by_x = np.argsort(s_x, kind="stable")
        s_by_y_desc = np.argsort(-s_x, kind="stable")
        y_rank_of_s = np.empty(n_s, dtype=np.int64)
        y_rank_of_s[s_by_y_desc] = np.arange(n_s)
        s_y_desc_values = s_x[s_by_y_desc]
        t_by_x = np.argsort(t_x, kind="stable")
        insert_limits = np.searchsorted(s_x[s_by_x], t_x[t_by_x], side="right")
        scan_limits = np.searchsorted(-s_y_desc_values, -t_y[t_by_x], side="right")
        bit_array = np.zeros(n_s, dtype=bool)
        inserted = 0
        chunks, total = [], 0
        for k in range(n_t):
            t_original = t_by_x[k]
            limit = insert_limits[k]
            while inserted < limit:
                bit_array[y_rank_of_s[s_by_x[inserted]]] = True
                inserted += 1
            scan = scan_limits[k]
            if scan == 0:
                continue
            hits = np.nonzero(bit_array[:scan])[0]
            if hits.size == 0:
                continue
            s_candidates = s_by_y_desc[hits]
            if other_dims:
                keep = np.ones(s_candidates.size, dtype=bool)
                for i in other_dims:
                    other_pred = condition.predicates[i]
                    diff = t_arr[t_original, i] - s_arr[s_candidates, i]
                    keep &= (diff >= -other_pred.eps_left) & (diff <= other_pred.eps_right)
                s_candidates = s_candidates[keep]
                if s_candidates.size == 0:
                    continue
            if materialize:
                t_column = np.full(s_candidates.size, t_original, dtype=np.int64)
                chunks.append(np.column_stack([s_candidates.astype(np.int64), t_column]))
            else:
                total += int(s_candidates.size)
        if materialize:
            if not chunks:
                return empty_pairs(), 0
            pairs = np.concatenate(chunks)
            return pairs, int(pairs.shape[0])
        return empty_pairs(), total


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #
def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build(rows: int, dims: int, band_width: float):
    s = pareto_relation("S", rows, dimensions=dims, z=SKEW, seed=31)
    t = pareto_relation("T", rows, dimensions=dims, z=SKEW, seed=32)
    condition = BandCondition.symmetric([f"A{i+1}" for i in range(dims)], band_width)
    return (
        s.join_matrix(condition.attributes),
        t.join_matrix(condition.attributes),
        condition,
    )


def _time(fn, *args, repeat: int = 2) -> tuple[float, object]:
    """Return (best-of-``repeat`` seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def verify_count_never_expands() -> bool:
    """Prove the 1-D count path performs no candidate expansion.

    The kernel expansion hook is replaced by one that fails; every kernel's
    1-D ``count()`` must still answer correctly — i.e. purely from the
    ``searchsorted`` window arithmetic, with no O(output) allocation.
    """
    rng = np.random.default_rng(0)
    s, t = rng.uniform(0, 4, size=(2000, 1)), rng.uniform(0, 4, size=(2000, 1))
    condition = BandCondition.symmetric(["A1"], 0.05)
    expected = SortSweepJoin().count(s, t, condition)
    original = kernels.iter_window_candidates

    def _forbidden(*args, **kwargs):
        raise AssertionError("1-D count must not expand candidate pairs")

    kernels.iter_window_candidates = _forbidden
    try:
        for algorithm in (SortSweepJoin(), IEJoinLocal(), IndexNestedLoopJoin()):
            if algorithm.count(s, t, condition) != expected:
                return False
    finally:
        kernels.iter_window_candidates = original
    return True


def run_local_join_benchmark(workloads=FULL_WORKLOADS) -> dict:
    """Time every kernel on every workload and return the perf record."""
    record: dict = {
        "benchmark": "local-join-kernels",
        "machine": {
            "cpus": _cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "skew": SKEW,
        "loop_rows_cap": LOOP_ROWS_CAP,
        "workloads": [],
        "count_zero_materialization_verified": verify_count_never_expands(),
    }
    vector_kernels = {
        "sort-sweep": SortSweepJoin(),
        "iejoin-local": IEJoinLocal(),
        "index-nested-loop": IndexNestedLoopJoin(),
        "auto": AutoJoin(),
    }
    for rows, dims, band_width in workloads:
        s_matrix, t_matrix, condition = _build(rows, dims, band_width)
        entry: dict = {
            "rows": rows,
            "dims": dims,
            "band_width": band_width,
            "join_seconds": {},
            "count_seconds": {},
        }
        # Warm-up (page faults, allocator growth) outside the timings.
        SortSweepJoin().count(s_matrix, t_matrix, condition)

        loop_sweep = LoopSortSweepJoin()
        loop_join_seconds, loop_pairs = _time(
            loop_sweep.join, s_matrix, t_matrix, condition
        )
        loop_count_seconds, loop_count = _time(
            loop_sweep.count, s_matrix, t_matrix, condition
        )
        entry["join_seconds"][loop_sweep.name] = loop_join_seconds
        entry["count_seconds"][loop_sweep.name] = loop_count_seconds
        reference = canonical_pair_order(loop_pairs)
        entry["output"] = int(reference.shape[0])
        assert loop_count == reference.shape[0]

        if rows <= LOOP_ROWS_CAP:
            loop_ie = LoopIEJoin()
            entry["join_seconds"][loop_ie.name], ie_pairs = _time(
                loop_ie.join, s_matrix, t_matrix, condition
            )
            entry["count_seconds"][loop_ie.name], _ = _time(
                loop_ie.count, s_matrix, t_matrix, condition
            )
            if not np.array_equal(canonical_pair_order(ie_pairs), reference):
                raise AssertionError(f"loop-iejoin pair set diverged at {rows}x{rows}")
        else:
            entry["loop_iejoin_skipped"] = (
                f"seed IEJoin loop capped at {LOOP_ROWS_CAP:,} rows "
                "(O(n) bit-array prefix scan per tuple)"
            )

        for name, algorithm in vector_kernels.items():
            join_seconds, pairs = _time(algorithm.join, s_matrix, t_matrix, condition)
            count_seconds, count = _time(algorithm.count, s_matrix, t_matrix, condition)
            entry["join_seconds"][name] = join_seconds
            entry["count_seconds"][name] = count_seconds
            if not np.array_equal(canonical_pair_order(pairs), reference):
                raise AssertionError(f"{name} pair set diverged at {rows}x{rows} d={dims}")
            if count != reference.shape[0]:
                raise AssertionError(f"{name} count diverged at {rows}x{rows} d={dims}")
        entry["pairs_identical"] = True
        entry["speedup_sort_sweep"] = (
            loop_join_seconds / entry["join_seconds"]["sort-sweep"]
            if entry["join_seconds"]["sort-sweep"] > 0
            else float("inf")
        )
        entry["auto_choice"] = vector_kernels["auto"].last_choice
        record["workloads"].append(entry)

    gate = [
        w
        for w in record["workloads"]
        if w["rows"] >= ACCEPTANCE_ROWS and w["pairs_identical"]
    ]
    if gate:
        worst = min(w["speedup_sort_sweep"] for w in gate)
        record["acceptance"] = {
            "rows": max(w["rows"] for w in gate),
            "min_speedup_sort_sweep": worst,
            "threshold": ACCEPTANCE_SPEEDUP,
            "passed": worst >= ACCEPTANCE_SPEEDUP,
        }
    return record


def render(record: dict) -> str:
    """Render the perf record as an aligned table."""
    rows = []
    for entry in record["workloads"]:
        rows.append(
            [
                f"{entry['rows']:,} x d{entry['dims']}",
                entry["output"],
                entry["join_seconds"]["loop-sort-sweep"],
                entry["join_seconds"]["sort-sweep"],
                entry["speedup_sort_sweep"],
                entry["count_seconds"]["sort-sweep"],
                entry["join_seconds"]["iejoin-local"],
                entry["auto_choice"],
            ]
        )
    title = (
        f"local-join kernels: seed loops vs vectorized "
        f"({record['machine']['cpus']} CPUs; counts never materialize pairs: "
        f"{record['count_zero_materialization_verified']})"
    )
    return format_table(
        [
            "workload",
            "output",
            "loop sweep [s]",
            "vec sweep [s]",
            "speedup",
            "vec count [s]",
            "vec iejoin [s]",
            "auto picked",
        ],
        rows,
        title=title,
    )


def record_path() -> Path:
    """Return the output path of the JSON perf record."""
    override = os.environ.get("REPRO_BENCH_LOCAL_JOIN_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_local_join.json"


def write_record(record: dict) -> Path:
    """Write the JSON perf record and return its path."""
    path = record_path()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def test_local_join_kernel_comparison():
    """Vectorized kernels agree with the seed loops and beat them soundly."""
    from conftest import bench_scale, write_report

    scale = bench_scale()
    workloads = tuple(
        (max(2_000, int(rows * scale)), dims, band_width)
        for rows, dims, band_width in FULL_WORKLOADS
    )
    record = run_local_join_benchmark(workloads)
    assert record["count_zero_materialization_verified"]
    assert all(w["pairs_identical"] for w in record["workloads"])
    assert all(w["speedup_sort_sweep"] > 1.0 for w in record["workloads"])
    path = write_record(record)
    write_report("local_join_kernels", render(record) + f"\n[record written to {path}]")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    perf_record = run_local_join_benchmark(SMOKE_WORKLOADS if smoke else FULL_WORKLOADS)
    print(render(perf_record))
    print(f"\n[record written to {write_record(perf_record)}]")
    if not perf_record["count_zero_materialization_verified"]:
        sys.exit("FAIL: 1-D count path materialized candidates")
    if smoke:
        # CI gate: vectorized must always win, even at smoke sizes.
        slowest = min(w["speedup_sort_sweep"] for w in perf_record["workloads"])
        if slowest < 2.0:
            sys.exit(f"FAIL: vectorized sort-sweep only {slowest:.1f}x over the seed loop")
    elif "acceptance" in perf_record and not perf_record["acceptance"]["passed"]:
        sys.exit(
            "FAIL: vectorized sort-sweep speedup "
            f"{perf_record['acceptance']['min_speedup_sort_sweep']:.1f}x "
            f"< {ACCEPTANCE_SPEEDUP}x at {ACCEPTANCE_ROWS:,} rows"
        )
