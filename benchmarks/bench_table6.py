"""Paper Table 6: Grid* vs RecPart on skewed and anti-correlated (reverse-Pareto) data."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table6


def test_table6_grid_star_vs_recpart(benchmark):
    result = benchmark.pedantic(
        lambda: table6(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table6", result.format())
    # On the reverse-Pareto workloads Grid* suffers from Lemma-2-style dense
    # regions while RecPart stays near the lower bound on max worker input.
    reverse_experiments = [
        e for e in result.experiments if e.workload.dataset == "rv-pareto"
    ]
    assert reverse_experiments, "table 6 must include reverse-Pareto workloads"
    for experiment in reverse_experiments:
        recpart = experiment.result_for("RecPart")
        grid_star = experiment.result_for("Grid*")
        if recpart.failed or grid_star.failed:
            continue
        assert recpart.max_worker_input <= grid_star.max_worker_input
