"""Paper Tables 9 and 14: RecPart-S vs RecPart (benefit of symmetric partitioning)."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table9


def test_table9_symmetric_partitioning(benchmark):
    result = benchmark.pedantic(
        lambda: table9(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    write_report("table9_table14", result.format())
    # On the reverse-Pareto workloads the symmetric variant must reduce the max
    # worker input substantially (the paper's headline for this table);
    # on correlated data the two variants are close.
    reverse_rows = [row for row in result.custom_rows if "rv-pareto" in row[0]]
    assert reverse_rows, "table 9 must include reverse-Pareto workloads"
    improved = 0
    for row in reverse_rows:
        recpart_s_im, recpart_im = row[2], row[7]
        if recpart_im <= recpart_s_im:
            improved += 1
    assert improved >= len(reverse_rows) / 2
