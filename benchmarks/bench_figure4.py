"""Paper Figure 4 / Figure 10: duplication overhead vs max-worker-load overhead.

One point per (method, workload) across a cross-section of every workload
family; the paper's headline result is that RecPart stays within 10% of both
lower bounds while every competitor is beaten by a wide margin on at least
one axis.
"""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.figures import figure4
from repro.metrics.report import format_table


def test_figure4_overhead_scatter(benchmark):
    data = benchmark.pedantic(
        lambda: figure4(scale=bench_scale(), verify=bench_verify()), rounds=1, iterations=1
    )
    summary = format_table(
        ["method", "points", "within 10% of both bounds", "median dup", "median load", "worst"],
        data.summary_rows(),
        title="Figure 4 / Figure 10 summary",
    )
    write_report("figure4_figure10", data.render_ascii() + "\n\n" + summary)

    assert len(data.points) >= 20
    # The qualitative claim: RecPart's median overheads are far below the
    # competitors' on both axes.
    medians = {row[0]: (row[3], row[4]) for row in data.summary_rows()}
    for method in ("1-Bucket", "Grid-eps"):
        if method in medians:
            assert medians["RecPart"][0] < medians[method][0]
    # RecPart lands within (or near) the 10% box for a majority of workloads;
    # at this reduced scale the sampling noise is far higher than on the
    # paper's 400M-tuple inputs, so the threshold is relaxed to 25%.
    recpart_points = data.points_for("RecPart")
    near_optimal = sum(
        1
        for p in recpart_points
        if p.duplication_overhead <= 0.25 and p.load_overhead <= 0.25
    )
    assert near_optimal >= len(recpart_points) * 0.6
