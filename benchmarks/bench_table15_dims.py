"""Paper Table 15: dimensionality sweep (d = 1, 2, 4, 8) on pareto-1.5."""

from __future__ import annotations

from conftest import bench_scale, bench_verify, write_report

from repro.experiments.tables import table15


def test_table15_dimensionality_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: table15(scale=bench_scale() * 0.6, verify=bench_verify()),
        rounds=1,
        iterations=1,
    )
    write_report("table15", result.format())
    # 1-Bucket's numbers are independent of dimensionality (its matrix cover
    # ignores the join condition): total input stays identical across d.
    one_bucket_inputs = {
        round(r.total_input)
        for r in result.method_results("1-Bucket")
        if not r.failed
    }
    assert len(one_bucket_inputs) == 1
    # RecPart keeps beating CSIO on total input as dimensionality grows.  The
    # 1-dimensional row is excluded: its output is hundreds of times the input
    # (an output-dominated join where, as Section 5.1 notes, the partitioning
    # method barely matters and even 1-Bucket is near-optimal).
    for experiment in result.experiments:
        if experiment.workload.dimensions < 2:
            continue
        recpart = experiment.result_for("RecPart")
        csio = experiment.result_for("CSIO")
        if not recpart.failed and not csio.failed:
            assert recpart.total_input <= csio.total_input * 1.05
