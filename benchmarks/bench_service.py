"""Benchmark of the band-join serving layer.

Measures the four execution paths of :class:`repro.service.BandJoinService`
on the standard Table-2-style Pareto workload:

``cold``
    First query for an epsilon: RecPart optimization plus a full join.
``plan_cache``
    Result caches dropped, plans kept: full join under a cached plan.
``result_cache``
    Repeat query: answered from the materialized-result cache.
``delta``
    Query after appending a 1% delta: cached base result plus delta joins
    of only the appended rows through the existing partitioning.

Each path is sampled across several epsilon parameters of one prepared
query (and several repeats for the sub-millisecond paths), then a
concurrent section pushes a mixed epsilon workload through the scheduler
to measure sustained throughput with single-flight dedup and
micro-batching enabled.

The machine-readable record lands in ``BENCH_service.json`` at the
repository root (override with ``REPRO_BENCH_SERVICE_OUT``), including the
speedup of the result-cached and delta paths over cold — the serving
layer's reason to exist; both are expected to clear 10x on any machine.

Run standalone for the full-size measurement, or ``--smoke`` for the CI
end-to-end exercise::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone execution
    sys.path.insert(0, str(_SRC))

from repro.config import ServiceConfig  # noqa: E402
from repro.data.generators import correlated_pair, pareto_relation  # noqa: E402
from repro.metrics.report import format_table  # noqa: E402
from repro.service import BandJoinService  # noqa: E402

#: Full-size workload shape (Table-2-style 2-d Pareto-1.5 band join).
FULL_ROWS_PER_INPUT = 50_000
SMOKE_ROWS_PER_INPUT = 4_000
DIMENSIONS = 2
SKEW = 1.5
WORKERS = 8
DELTA_FRACTION = 0.01
#: Epsilon parameters sampled per path (each is one prepared-query binding).
EPSILONS = (0.004, 0.006, 0.008, 0.010, 0.012, 0.014)
RESULT_CACHE_REPEATS = 5
CONCURRENT_REQUESTS = 60
CAPTURE_BURST = 500
CAPTURE_REPEAT = 9


def _percentiles(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def pick(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

    return {
        "p50": pick(0.50),
        "p95": pick(0.95),
        "p99": pick(0.99),
        "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        "samples": len(ordered),
    }


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_service_benchmark(rows_per_input: int) -> dict:
    """Measure every serving path on one workload and return the perf record."""
    s, t = correlated_pair(
        rows_per_input, rows_per_input, dimensions=DIMENSIONS, z=SKEW, seed=0
    )
    attributes = [f"A{i + 1}" for i in range(DIMENSIONS)]
    delta_rows = max(1, int(rows_per_input * DELTA_FRACTION))
    config = ServiceConfig(
        backend="threads",
        workers=WORKERS,
        staleness_threshold=10.0,  # keep the deltas un-compacted while measuring
        compaction="off",
        scheduler_workers=4,
    )

    latencies: dict[str, list[float]] = {
        "cold": [],
        "plan_cache": [],
        "result_cache": [],
        "delta": [],
    }
    outputs: dict[float, int] = {}

    with BandJoinService(config) as service:
        service.register("S", s)
        service.register("T", t)
        prepared = service.prepare(
            "bench", "S", "T", attributes=attributes, epsilons=EPSILONS[0]
        )

        # Path 1: cold — every epsilon optimizes its own plan and joins.
        for eps in EPSILONS:
            result = service.query("bench", eps)
            assert result.path == "cold", result.path
            latencies["cold"].append(result.seconds)
            outputs[eps] = result.n_pairs

        # Path 2: plan-cached — drop materialized results, keep the plans.
        prepared.invalidate()
        for eps in EPSILONS:
            result = service.query("bench", eps)
            assert result.path == "plan_cache", result.path
            latencies["plan_cache"].append(result.seconds)
            assert result.n_pairs == outputs[eps]

        # Path 3: result-cached — repeats answer from the result cache.
        for _ in range(RESULT_CACHE_REPEATS):
            for eps in EPSILONS:
                result = service.query("bench", eps)
                assert result.path == "result_cache", result.path
                latencies["result_cache"].append(result.seconds)
                assert result.n_pairs == outputs[eps]

        # Path 4: post-append delta — 1% of fresh rows on the S side.
        delta = pareto_relation("S", delta_rows, dimensions=DIMENSIONS, z=SKEW, seed=99)
        service.append("S", delta)
        for eps in EPSILONS:
            result = service.query("bench", eps)
            assert result.path == "delta", result.path
            latencies["delta"].append(result.seconds)
            assert result.n_pairs >= outputs[eps]

        # Concurrent section: mixed epsilons through the scheduler.
        throughput_start = time.perf_counter()
        futures = [
            service.submit("bench", EPSILONS[i % len(EPSILONS)])
            for i in range(CONCURRENT_REQUESTS)
        ]
        for future in futures:
            future.result(timeout=600)
        throughput_seconds = time.perf_counter() - throughput_start
        scheduler_snapshot = service.scheduler.metrics.snapshot()

        # Capture overhead: the workload recorder must cost < 5% on the
        # cached-path throughput (the path where fixed costs dominate).
        capture = measure_capture_overhead(service, repeat=CAPTURE_REPEAT)

    paths = {path: _percentiles(samples) for path, samples in latencies.items()}
    cold_p50 = paths["cold"]["p50"]
    record = {
        "benchmark": "service-paths",
        "workload": {
            "rows_per_input": rows_per_input,
            "dimensions": DIMENSIONS,
            "skew": SKEW,
            "workers": WORKERS,
            "epsilons": list(EPSILONS),
            "delta_rows": delta_rows,
            "delta_fraction": DELTA_FRACTION,
        },
        "machine": {
            "cpus": _cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "paths": paths,
        "speedup_vs_cold": {
            path: (cold_p50 / stats["p50"]) if stats["p50"] > 0 else float("inf")
            for path, stats in paths.items()
        },
        "concurrent": {
            "requests": CONCURRENT_REQUESTS,
            "wall_seconds": throughput_seconds,
            "throughput_qps": CONCURRENT_REQUESTS / throughput_seconds
            if throughput_seconds
            else float("inf"),
            "scheduler": scheduler_snapshot,
        },
        "output_pairs": {str(eps): count for eps, count in sorted(outputs.items())},
        "capture": capture,
    }
    record["result_cache_speedup_ok"] = record["speedup_vs_cold"]["result_cache"] >= 10.0
    record["delta_speedup_ok"] = record["speedup_vs_cold"]["delta"] >= 10.0
    record["capture_overhead_ok"] = capture["overhead_fraction"] < 0.05
    return record


def measure_capture_overhead(service: BandJoinService, repeat: int = CAPTURE_REPEAT) -> dict:
    """Time cached-path queries with the recorder detached vs attached.

    Every query answers from the materialized-result cache — the path where
    the per-request fixed costs (and therefore any capture overhead)
    dominate.  The recorder is toggled on **every other request** and the
    two per-request latency populations are compared by their medians:
    per-query interleaving exposes both configurations to the same machine
    load at the same time, and the median discards scheduler-jitter
    outliers, so a microsecond-level effect resolves cleanly where
    burst-vs-burst comparisons drown it in noise.  The ISSUE budget is
    < 5% overhead.
    """
    recorder = service.scheduler.recorder
    latencies: dict[bool, list[float]] = {False: [], True: []}
    try:
        for i in range(2 * CAPTURE_BURST * max(1, repeat)):
            enabled = bool(i & 1)
            # i // 2 keeps the epsilon sequence identical per configuration.
            eps = EPSILONS[(i // 2) % len(EPSILONS)]
            service.scheduler.recorder = recorder if enabled else None
            start = time.perf_counter()
            service.query("bench", eps)
            latencies[enabled].append(time.perf_counter() - start)
    finally:
        service.scheduler.recorder = recorder
    disabled = sorted(latencies[False])[len(latencies[False]) // 2]
    enabled = sorted(latencies[True])[len(latencies[True]) // 2]
    return {
        "requests_per_config": CAPTURE_BURST * max(1, repeat),
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": (enabled - disabled) / disabled if disabled else 0.0,
    }


def render(record: dict) -> str:
    """Render the perf record as an aligned table."""
    rows = [
        [
            path,
            stats["samples"],
            stats["p50"],
            stats["p95"],
            stats["p99"],
            record["speedup_vs_cold"][path],
        ]
        for path, stats in record["paths"].items()
    ]
    concurrent = record["concurrent"]
    title = (
        f"serving paths (|S|=|T|={record['workload']['rows_per_input']:,}, "
        f"w={record['workload']['workers']}, {record['machine']['cpus']} CPUs) — "
        f"concurrent: {concurrent['throughput_qps']:.0f} q/s over "
        f"{concurrent['requests']} mixed requests"
    )
    table = format_table(
        ["path", "n", "p50 [s]", "p95 [s]", "p99 [s]", "vs cold"], rows, title=title
    )
    capture = record.get("capture")
    if capture:
        table += (
            f"\nworkload capture overhead on the cached path: "
            f"{capture['overhead_fraction'] * 100:+.2f}% "
            f"(median per-request {capture['disabled_seconds'] * 1e6:.1f}us off vs "
            f"{capture['enabled_seconds'] * 1e6:.1f}us on, interleaved over "
            f"{capture['requests_per_config']} requests per configuration)"
        )
    return table


def record_path() -> Path:
    """Return the output path of the JSON perf record."""
    override = os.environ.get("REPRO_BENCH_SERVICE_OUT")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_service.json"


def write_record(record: dict) -> Path:
    """Write the JSON perf record and return its path."""
    path = record_path()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def test_service_paths_benchmark():
    """The fast paths clear 10x over cold; the record lands in BENCH_service.json."""
    from conftest import bench_scale, write_report

    rows = max(SMOKE_ROWS_PER_INPUT, int(FULL_ROWS_PER_INPUT * bench_scale()))
    record = run_service_benchmark(rows)
    assert record["result_cache_speedup_ok"]
    assert record["delta_speedup_ok"]
    path = write_record(record)
    write_report("service_paths", render(record) + f"\n[record written to {path}]")


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        rows_arg = SMOKE_ROWS_PER_INPUT
    else:
        positional = [a for a in sys.argv[1:] if not a.startswith("-")]
        rows_arg = int(positional[0]) if positional else FULL_ROWS_PER_INPUT
    perf_record = run_service_benchmark(rows_arg)
    print(render(perf_record))
    print(f"\n[record written to {write_record(perf_record)}]")
    if not perf_record["capture_overhead_ok"]:
        print("WARNING: workload capture overhead exceeded the 5% budget")
    if not (perf_record["result_cache_speedup_ok"] and perf_record["delta_speedup_ok"]):
        print("WARNING: a fast path fell below the expected 10x speedup over cold")
        sys.exit(1)
